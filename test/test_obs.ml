(* Tests for Damd_obs: monotonic clock, metrics registry (counters,
   gauges, histogram percentiles), sink semantics (noop hot-path
   allocation freedom, ring wrap-around, span nesting/exceptions), and
   both export formats (damd-trace/1 and Chrome trace_event). *)

module Clock = Damd_obs.Clock
module Metrics = Damd_obs.Metrics
module Obs = Damd_obs.Obs
module Export = Damd_obs.Export
module Json = Damd_util.Json

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- clock --- *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  let c = Clock.now_ns () in
  check Alcotest.bool "b >= a" true (Int64.compare b a >= 0);
  check Alcotest.bool "c >= b" true (Int64.compare c b >= 0)

let test_clock_advances () =
  let t0 = Clock.now_ns () in
  (* burn enough work that even a coarse clock must tick *)
  let acc = ref 0 in
  for i = 1 to 2_000_000 do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc);
  check Alcotest.bool "elapsed > 0" true (Clock.s_since t0 > 0.)

let test_clock_conversions () =
  checkf "ns_to_s" 1.5 (Clock.ns_to_s 1_500_000_000L);
  checkf "ns_to_us" 2.5 (Clock.ns_to_us 2_500L)

(* --- metrics --- *)

let test_counter_and_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "sent" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  check Alcotest.int "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 4.;
  Metrics.set g 9.;
  Metrics.set g 2.;
  checkf "gauge holds last" 2. (Metrics.gauge_value g);
  checkf "gauge max" 9. (Metrics.gauge_max g);
  (* same name returns the same instrument *)
  Metrics.incr (Metrics.counter reg "sent");
  check Alcotest.int "interned" 6 (Metrics.counter_value c)

let test_histogram_exact_percentiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  (* below reservoir capacity: percentiles are exact (Stats.percentile) *)
  checkf "p50" 50.5 (Metrics.percentile h 50.);
  checkf "p95" 95.05 (Metrics.percentile h 95.);
  checkf "p99" 99.01 (Metrics.percentile h 99.);
  check Alcotest.int "count" 100 (Metrics.hist_count h)

let test_histogram_overflow_percentiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" in
  (* push past the reservoir so the bucket-interpolation path runs *)
  let n = Metrics.reservoir_capacity + 5000 in
  for i = 1 to n do
    Metrics.observe h (float_of_int (i mod 1000))
  done;
  let p50 = Metrics.percentile h 50. in
  let p99 = Metrics.percentile h 99. in
  check Alcotest.bool "p50 plausible" true (p50 > 100. && p50 < 900.);
  check Alcotest.bool "p99 >= p50" true (p99 >= p50);
  check Alcotest.bool "p99 bounded by max" true (p99 <= 999.)

let test_histogram_empty_nan () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "empty" in
  check Alcotest.bool "nan when empty" true
    (Float.is_nan (Metrics.percentile h 50.))

let test_metrics_to_json () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg "c");
  Metrics.set (Metrics.gauge reg "g") 7.;
  Metrics.observe (Metrics.histogram reg "h") 3.;
  match Metrics.to_json reg with
  | Json.Obj fields ->
      check Alcotest.bool "counters" true (List.mem_assoc "counters" fields);
      check Alcotest.bool "gauges" true (List.mem_assoc "gauges" fields);
      check Alcotest.bool "histograms" true (List.mem_assoc "histograms" fields)
  | _ -> Alcotest.fail "metrics json not an object"

(* --- sinks --- *)

let test_noop_is_disabled_and_transparent () =
  check Alcotest.bool "disabled" false (Obs.enabled Obs.noop);
  check Alcotest.bool "no metrics" true (Obs.metrics Obs.noop = None);
  check Alcotest.int "span returns" 42 (Obs.span Obs.noop "x" (fun () -> 42));
  Obs.instant Obs.noop "i";
  Obs.sample Obs.noop "s" 1.;
  check Alcotest.int "no events" 0 (List.length (Obs.events Obs.noop))

let test_noop_span_allocation_free () =
  (* the tentpole's hot-path guarantee: a noop span is a tag test plus the
     direct call — no allocation on the minor heap *)
  let f = Sys.opaque_identity (fun () -> 0) in
  ignore (Obs.span Obs.noop "warm" f);
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Obs.span Obs.noop "hot" f)
  done;
  let after = Gc.minor_words () in
  checkf "zero minor words" 0. (after -. before)

let test_memory_records_events () =
  let obs = Obs.memory () in
  check Alcotest.bool "enabled" true (Obs.enabled obs);
  check Alcotest.bool "not detailed by default" false (Obs.detailed obs);
  let r =
    Obs.span obs ~cat:"t" ~args:[ ("k", Json.Int 1) ] "outer" (fun () ->
        Obs.instant obs ~cat:"t" "mark";
        Obs.sample obs "track" 3.;
        "ok")
  in
  check Alcotest.string "span result" "ok" r;
  let events = Obs.events obs in
  check Alcotest.int "three events" 3 (List.length events);
  (* ring holds completion order: the inner instant and sample land
     before the enclosing span is recorded at exit *)
  match events with
  | [
   Obs.Instant { name = iname; ts_ns = its; _ };
   Obs.Sample { name = sname; value; _ };
   Obs.Span { name = spname; depth; ts_ns = spts; dur_ns; _ };
  ] ->
      check Alcotest.string "instant name" "mark" iname;
      check Alcotest.string "sample name" "track" sname;
      checkf "sample value" 3. value;
      check Alcotest.string "span name" "outer" spname;
      check Alcotest.int "span depth" 0 depth;
      check Alcotest.bool "span has duration" true (dur_ns >= 0L);
      check Alcotest.bool "instant inside span" true (its >= spts)
  | _ -> Alcotest.fail "unexpected event shapes"

let test_span_nesting_depth () =
  let obs = Obs.memory () in
  Obs.span obs "outer" (fun () ->
      Obs.span obs "inner" (fun () -> ()));
  let depths =
    List.filter_map
      (function
        | Obs.Span { name; depth; _ } -> Some (name, depth)
        | _ -> None)
      (Obs.events obs)
  in
  (* inner completes first; it ran under one open span *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "depths" [ ("inner", 1); ("outer", 0) ] depths

let test_span_exception_recorded () =
  let obs = Obs.memory () in
  (try Obs.span obs "boom" (fun () -> failwith "kaput") with
  | Failure _ -> ());
  match Obs.events obs with
  | [ Obs.Span { name; args; _ } ] ->
      check Alcotest.string "name" "boom" name;
      check Alcotest.bool "error arg" true
        (List.assoc_opt "error" args = Some (Json.Bool true))
  | _ -> Alcotest.fail "span not recorded on raise"

let test_ring_wraps_and_counts_dropped () =
  let obs = Obs.memory ~capacity:8 () in
  for i = 1 to 20 do
    Obs.instant obs ~args:[ ("i", Json.Int i) ] "e"
  done;
  let events = Obs.events obs in
  check Alcotest.int "capacity retained" 8 (List.length events);
  check Alcotest.int "dropped" 12 (Obs.dropped obs);
  (* oldest-first: the survivors are 13..20 *)
  (match (List.hd events, List.nth events 7) with
  | Obs.Instant { args = first; _ }, Obs.Instant { args = last; _ } ->
      check Alcotest.bool "oldest is 13" true
        (List.assoc_opt "i" first = Some (Json.Int 13));
      check Alcotest.bool "newest is 20" true
        (List.assoc_opt "i" last = Some (Json.Int 20))
  | _ -> Alcotest.fail "not instants");
  Obs.reset obs;
  check Alcotest.int "reset clears" 0 (List.length (Obs.events obs));
  check Alcotest.int "reset clears dropped" 0 (Obs.dropped obs)

let test_file_sink_streams_jsonl () =
  let path = Filename.temp_file "damd_obs" ".jsonl" in
  let obs = Obs.file path in
  Obs.span obs "s" (fun () -> Obs.instant obs "i");
  Metrics.incr (Metrics.counter (Option.get (Obs.metrics obs)) "c");
  Obs.close obs;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  (* header + instant + span + metrics trailer *)
  check Alcotest.int "four lines" 4 (List.length lines);
  check Alcotest.bool "header declares schema" true
    (Astring.String.is_infix ~affix:"damd-trace/1" (List.hd lines));
  check Alcotest.bool "trailer has metrics" true
    (Astring.String.is_infix ~affix:"metrics" (List.nth lines 3))

(* --- exports --- *)

let traced_sink () =
  let obs = Obs.memory () in
  Obs.span obs ~cat:"phase" "work" (fun () ->
      Obs.instant obs ~cat:"bank" ~args:[ ("culprit", Json.Int 3) ] "accusation";
      Obs.sample obs "queue" 5.);
  Metrics.incr (Metrics.counter (Option.get (Obs.metrics obs)) "sent");
  obs

let test_export_damd_trace () =
  let obs = traced_sink () in
  match Export.to_json ~meta:[ ("k", Json.String "v") ] obs with
  | Json.Obj fields ->
      check Alcotest.bool "schema" true
        (List.assoc_opt "schema" fields = Some (Json.String "damd-trace/1"));
      check Alcotest.bool "clock" true
        (List.assoc_opt "clock" fields = Some (Json.String "monotonic"));
      check Alcotest.bool "meta" true (List.mem_assoc "meta" fields);
      (match List.assoc_opt "events" fields with
      | Some (Json.List events) ->
          check Alcotest.int "three events" 3 (List.length events);
          (* sorted by start timestamp: the span opened first *)
          (match List.hd events with
          | Json.Obj e ->
              check Alcotest.bool "span first" true
                (List.assoc_opt "type" e = Some (Json.String "span"))
          | _ -> Alcotest.fail "event not an object")
      | _ -> Alcotest.fail "no events list");
      (match List.assoc_opt "span_stats" fields with
      | Some (Json.List stats) ->
          let has_work =
            List.exists
              (function
                | Json.Obj s ->
                    List.assoc_opt "name" s = Some (Json.String "work")
                    && List.mem_assoc "p99_ns" s
                | _ -> false)
              stats
          in
          check Alcotest.bool "work span stats with p99" true has_work
      | _ -> Alcotest.fail "no span_stats");
      check Alcotest.bool "metrics" true (List.mem_assoc "metrics" fields)
  | _ -> Alcotest.fail "trace not an object"

let test_export_chrome () =
  let obs = traced_sink () in
  match Export.to_chrome obs with
  | Json.Obj fields ->
      check Alcotest.bool "displayTimeUnit" true
        (List.assoc_opt "displayTimeUnit" fields = Some (Json.String "ms"));
      (match List.assoc_opt "traceEvents" fields with
      | Some (Json.List events) ->
          (* process-name metadata + 3 events *)
          check Alcotest.int "four entries" 4 (List.length events);
          let phs =
            List.filter_map
              (function
                | Json.Obj e -> (
                    match List.assoc_opt "ph" e with
                    | Some (Json.String p) -> Some p
                    | _ -> None)
                | _ -> None)
              events
          in
          check
            (Alcotest.list Alcotest.string)
            "phases" [ "M"; "X"; "i"; "C" ]
            (List.filter (fun p -> List.mem p [ "M"; "X"; "i"; "C" ]) phs)
      | _ -> Alcotest.fail "no traceEvents")
  | _ -> Alcotest.fail "chrome trace not an object"

let test_export_write_files () =
  let obs = traced_sink () in
  let p1 = Filename.temp_file "damd_trace" ".json" in
  let p2 = Filename.temp_file "damd_chrome" ".json" in
  Export.write ~path:p1 obs;
  Export.write_chrome ~path:p2 obs;
  let slurp p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let t = slurp p1 and c = slurp p2 in
  Sys.remove p1;
  Sys.remove p2;
  check Alcotest.bool "damd-trace schema on disk" true
    (Astring.String.is_infix ~affix:"damd-trace/1" t);
  check Alcotest.bool "chrome traceEvents on disk" true
    (Astring.String.is_infix ~affix:"traceEvents" c)

let suites =
  [
    ( "obs.clock",
      [
        Alcotest.test_case "monotone" `Quick test_clock_monotone;
        Alcotest.test_case "advances" `Quick test_clock_advances;
        Alcotest.test_case "conversions" `Quick test_clock_conversions;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
        Alcotest.test_case "histogram exact percentiles" `Quick
          test_histogram_exact_percentiles;
        Alcotest.test_case "histogram overflow percentiles" `Quick
          test_histogram_overflow_percentiles;
        Alcotest.test_case "histogram empty nan" `Quick test_histogram_empty_nan;
        Alcotest.test_case "to_json shape" `Quick test_metrics_to_json;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "noop transparent" `Quick
          test_noop_is_disabled_and_transparent;
        Alcotest.test_case "noop allocation-free" `Quick
          test_noop_span_allocation_free;
        Alcotest.test_case "memory records" `Quick test_memory_records_events;
        Alcotest.test_case "span nesting depth" `Quick test_span_nesting_depth;
        Alcotest.test_case "span exception recorded" `Quick
          test_span_exception_recorded;
        Alcotest.test_case "ring wraps" `Quick test_ring_wraps_and_counts_dropped;
        Alcotest.test_case "file sink jsonl" `Quick test_file_sink_streams_jsonl;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "damd-trace/1" `Quick test_export_damd_trace;
        Alcotest.test_case "chrome trace_event" `Quick test_export_chrome;
        Alcotest.test_case "write files" `Quick test_export_write_files;
      ] );
  ]

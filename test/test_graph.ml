(* Tests for Damd_graph: graph construction, Dijkstra under the FPSS
   node-transit-cost model (checked against a brute-force simple-path
   oracle), biconnectivity analysis, and generator invariants.

   The Figure 1 tests reproduce every number the paper derives from its
   example network. *)

module Rng = Damd_util.Rng
module Graph = Damd_graph.Graph
module Dijkstra = Damd_graph.Dijkstra
module Biconnect = Damd_graph.Biconnect
module Gen = Damd_graph.Gen

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let fig1 = lazy (Gen.figure1 ())
let node name = List.assoc name (snd (Lazy.force fig1))

(* Brute-force oracle: enumerate all simple paths, take the best under the
   canonical order. Exponential, used only on tiny graphs. *)
let brute_lcp g ~src ~dst =
  let best = ref None in
  let consider path =
    let cost =
      List.fold_left (fun acc v -> acc +. Graph.cost g v) 0. (Dijkstra.transit_nodes path)
    in
    let entry = { Dijkstra.cost; path } in
    match !best with
    | None -> best := Some entry
    | Some cur -> if Dijkstra.compare_entry entry cur < 0 then best := Some entry
  in
  let rec explore visited v acc =
    if v = dst then consider (List.rev (v :: acc))
    else
      List.iter
        (fun u -> if not (List.mem u visited) then explore (u :: visited) u (v :: acc))
        (Graph.neighbors g v)
  in
  explore [ src ] src [];
  !best

(* --- Graph --- *)

let test_create_basic () =
  let g = Graph.create ~n:3 ~costs:[| 1.; 2.; 3. |] ~edges:[ (0, 1); (1, 2) ] in
  check Alcotest.int "n" 3 (Graph.n g);
  checkf "cost" 2. (Graph.cost g 1);
  check (Alcotest.list Alcotest.int) "neighbors" [ 0; 2 ] (Graph.neighbors g 1);
  check Alcotest.int "degree" 1 (Graph.degree g 0);
  check Alcotest.bool "edge" true (Graph.has_edge g 0 1);
  check Alcotest.bool "no edge" false (Graph.has_edge g 0 2)

let test_create_dedups_edges () =
  let g = Graph.create ~n:2 ~costs:[| 0.; 0. |] ~edges:[ (0, 1); (1, 0); (0, 1) ] in
  check Alcotest.int "one edge" 1 (Graph.num_edges g)

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop") (fun () ->
      ignore (Graph.create ~n:2 ~costs:[| 0.; 0. |] ~edges:[ (1, 1) ]))

let test_create_rejects_negative_cost () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Graph.create: transit costs must be finite and non-negative")
    (fun () -> ignore (Graph.create ~n:1 ~costs:[| -1. |] ~edges:[]))

let test_create_rejects_out_of_range_edge () =
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
      ignore (Graph.create ~n:2 ~costs:[| 0.; 0. |] ~edges:[ (0, 5) ]))

let test_with_cost_is_functional () =
  let g = Graph.create ~n:2 ~costs:[| 1.; 1. |] ~edges:[ (0, 1) ] in
  let g' = Graph.with_cost g 0 9. in
  checkf "updated" 9. (Graph.cost g' 0);
  checkf "original untouched" 1. (Graph.cost g 0)

let test_edges_sorted_unique () =
  let g = Graph.create ~n:4 ~costs:(Array.make 4 0.) ~edges:[ (3, 2); (0, 1); (2, 3) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "edges" [ (0, 1); (2, 3) ] (Graph.edges g)

let test_connectivity () =
  let connected = Graph.create ~n:3 ~costs:(Array.make 3 0.) ~edges:[ (0, 1); (1, 2) ] in
  let split = Graph.create ~n:3 ~costs:(Array.make 3 0.) ~edges:[ (0, 1) ] in
  check Alcotest.bool "connected" true (Graph.is_connected connected);
  check Alcotest.bool "split" false (Graph.is_connected split)

let test_to_dot_mentions_nodes () =
  let g, _ = Lazy.force fig1 in
  let dot = Graph.to_dot g in
  check Alcotest.bool "has node" true (Astring.String.is_infix ~affix:"n5" dot);
  check Alcotest.bool "has edge" true (Astring.String.is_infix ~affix:"--" dot)

(* --- Figure 1 --- *)

let test_fig1_shape () =
  let g, _ = Lazy.force fig1 in
  check Alcotest.int "6 nodes" 6 (Graph.n g);
  check Alcotest.int "7 edges" 7 (Graph.num_edges g);
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g)

let test_fig1_x_to_z () =
  (* "the total LCP cost of sending a packet from X to Z is 2" via X-D-C-Z *)
  let g, _ = Lazy.force fig1 in
  match Dijkstra.lcp g ~src:(node "X") ~dst:(node "Z") with
  | None -> Alcotest.fail "no path"
  | Some e ->
      checkf "cost 2" 2. e.Dijkstra.cost;
      check (Alcotest.list Alcotest.int) "path X-D-C-Z"
        [ node "X"; node "D"; node "C"; node "Z" ]
        e.Dijkstra.path

let test_fig1_z_to_d () =
  (* "the cost of sending a packet from Z to D is 1" via Z-C-D *)
  let g, _ = Lazy.force fig1 in
  match Dijkstra.lcp g ~src:(node "Z") ~dst:(node "D") with
  | None -> Alcotest.fail "no path"
  | Some e ->
      checkf "cost 1" 1. e.Dijkstra.cost;
      check (Alcotest.list Alcotest.int) "path Z-C-D"
        [ node "Z"; node "C"; node "D" ]
        e.Dijkstra.path

let test_fig1_b_to_d () =
  (* "The cost of sending a packet from B to D is 0" *)
  let g, _ = Lazy.force fig1 in
  match Dijkstra.lcp g ~src:(node "B") ~dst:(node "D") with
  | None -> Alcotest.fail "no path"
  | Some e -> checkf "cost 0" 0. e.Dijkstra.cost

let test_fig1_example1_manipulation () =
  (* Example 1: with C declaring 5, X-A-Z becomes the X-Z LCP... *)
  let g, _ = Lazy.force fig1 in
  let g' = Graph.with_cost g (node "C") 5. in
  (match Dijkstra.lcp g' ~src:(node "X") ~dst:(node "Z") with
  | None -> Alcotest.fail "no path"
  | Some e ->
      check (Alcotest.list Alcotest.int) "path X-A-Z"
        [ node "X"; node "A"; node "Z" ]
        e.Dijkstra.path);
  (* ...while C keeps the D-Z traffic. *)
  match Dijkstra.lcp g' ~src:(node "D") ~dst:(node "Z") with
  | None -> Alcotest.fail "no path"
  | Some e ->
      check Alcotest.bool "C still transits D-Z" true
        (List.mem (node "C") (Dijkstra.transit_nodes e.Dijkstra.path))

let test_fig1_lcp_tree () =
  (* The bold tree of Figure 1: LCPs from every node to Z. *)
  let g, _ = Lazy.force fig1 in
  let tree = Dijkstra.lcp_tree_edges g ~root:(node "Z") in
  let norm (u, v) = if u < v then (u, v) else (v, u) in
  let expect =
    List.sort_uniq compare
      [
        norm (node "A", node "Z"); (* A reaches Z directly *)
        norm (node "B", node "Z"); (* B reaches Z directly *)
        norm (node "C", node "Z");
        norm (node "C", node "D");
        norm (node "D", node "X");
      ]
  in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "tree" expect tree

(* --- Dijkstra --- *)

let test_dijkstra_same_node () =
  let g, _ = Lazy.force fig1 in
  match Dijkstra.lcp g ~src:2 ~dst:2 with
  | Some e ->
      checkf "zero" 0. e.Dijkstra.cost;
      check (Alcotest.list Alcotest.int) "trivial path" [ 2 ] e.Dijkstra.path
  | None -> Alcotest.fail "self path missing"

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:4 ~costs:(Array.make 4 1.) ~edges:[ (0, 1); (2, 3) ] in
  check Alcotest.bool "unreachable" true (Dijkstra.lcp g ~src:0 ~dst:3 = None)

let test_dijkstra_avoid () =
  let g, _ = Lazy.force fig1 in
  (* Avoiding C, the X-Z LCP must use A at cost 5. *)
  match Dijkstra.dist_avoiding g ~avoid:(node "C") ~src:(node "X") ~dst:(node "Z") with
  | None -> Alcotest.fail "no path avoiding C"
  | Some c -> checkf "cost 5" 5. c

let test_dijkstra_avoid_endpoint_rejected () =
  let g, _ = Lazy.force fig1 in
  Alcotest.check_raises "avoid endpoint"
    (Invalid_argument "Dijkstra.dist_avoiding: endpoint equals avoided node") (fun () ->
      ignore (Dijkstra.dist_avoiding g ~avoid:4 ~src:4 ~dst:5))

let test_dijkstra_transit_nodes () =
  check (Alcotest.list Alcotest.int) "interior" [ 2; 3 ] (Dijkstra.transit_nodes [ 1; 2; 3; 4 ]);
  check (Alcotest.list Alcotest.int) "adjacent" [] (Dijkstra.transit_nodes [ 1; 2 ]);
  check (Alcotest.list Alcotest.int) "single" [] (Dijkstra.transit_nodes [ 1 ])

let test_dijkstra_matches_brute_force () =
  let rng = Rng.create 77 in
  for trial = 1 to 25 do
    let g = Gen.erdos_renyi rng ~n:7 ~p:0.4 (Gen.Uniform_int (0, 9)) in
    for src = 0 to 6 do
      for dst = 0 to 6 do
        if src <> dst then begin
          let fast = Dijkstra.lcp g ~src ~dst in
          let slow = brute_lcp g ~src ~dst in
          match (fast, slow) with
          | Some a, Some b ->
              if a.Dijkstra.cost <> b.Dijkstra.cost then
                Alcotest.failf "trial %d: cost mismatch %g vs %g" trial a.Dijkstra.cost
                  b.Dijkstra.cost;
              if a.Dijkstra.path <> b.Dijkstra.path then
                Alcotest.failf "trial %d: canonical path mismatch" trial
          | None, None -> ()
          | _ -> Alcotest.failf "trial %d: reachability mismatch" trial
        end
      done
    done
  done

let test_all_to_dest_consistent () =
  let g, _ = Lazy.force fig1 in
  let all = Dijkstra.all_to_dest g in
  for dst = 0 to 5 do
    for src = 0 to 5 do
      let direct = Dijkstra.lcp g ~src ~dst in
      let tabulated = all.(dst).(src) in
      match (direct, tabulated) with
      | Some a, Some b -> checkf "same cost" a.Dijkstra.cost b.Dijkstra.cost
      | None, None -> ()
      | _ -> Alcotest.fail "reachability mismatch"
    done
  done

let prop_dijkstra_triangle =
  (* d(u,w) <= d(u,v) + c_v + d(v,w): routing through any intermediate v
     cannot beat the LCP. *)
  QCheck.Test.make ~name:"triangle inequality through any node" ~count:50
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Rng.create (a + (31 * b) + (997 * c)) in
      let g = Gen.chordal_ring rng ~n:10 ~chords:5 (Gen.Uniform_int (0, 9)) in
      let u = a mod 10 and v = b mod 10 and w = c mod 10 in
      QCheck.assume (u <> v && v <> w && u <> w);
      match (Dijkstra.dist g ~src:u ~dst:w, Dijkstra.dist g ~src:u ~dst:v,
             Dijkstra.dist g ~src:v ~dst:w) with
      | Some duw, Some duv, Some dvw -> duw <= duv +. Graph.cost g v +. dvw +. 1e-9
      | _ -> false)

let prop_dijkstra_symmetric =
  (* Undirected graph with node costs: d(u,v) = d(v,u). *)
  QCheck.Test.make ~name:"distance is symmetric" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let rng = Rng.create (a + (1009 * b)) in
      let g = Gen.erdos_renyi rng ~n:9 ~p:0.35 (Gen.Uniform_int (0, 9)) in
      let u = a mod 9 and v = b mod 9 in
      QCheck.assume (u <> v);
      Dijkstra.dist g ~src:u ~dst:v = Dijkstra.dist g ~src:v ~dst:u)

let prop_avoid_no_worse =
  QCheck.Test.make ~name:"avoiding a node never shortens the path" ~count:50
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Rng.create (a + (31 * b) + (101 * c)) in
      let g = Gen.chordal_ring rng ~n:10 ~chords:6 (Gen.Uniform_int (0, 9)) in
      let u = a mod 10 and v = b mod 10 and k = c mod 10 in
      QCheck.assume (u <> v && k <> u && k <> v);
      match (Dijkstra.dist g ~src:u ~dst:v, Dijkstra.dist_avoiding g ~avoid:k ~src:u ~dst:v) with
      | Some d, Some d_avoid -> d_avoid >= d -. 1e-9
      | Some _, None -> false (* chordal rings are biconnected *)
      | None, _ -> false)

(* --- Biconnectivity --- *)

let test_ap_path_graph () =
  (* 0-1-2: node 1 is the only articulation point. *)
  let g = Graph.create ~n:3 ~costs:(Array.make 3 0.) ~edges:[ (0, 1); (1, 2) ] in
  check (Alcotest.list Alcotest.int) "aps" [ 1 ] (Biconnect.articulation_points g);
  check Alcotest.bool "not biconnected" false (Biconnect.is_biconnected g)

let test_ap_cycle () =
  let g = Gen.ring ~n:5 ~costs:(Array.make 5 0.) in
  check (Alcotest.list Alcotest.int) "no aps" [] (Biconnect.articulation_points g);
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g)

let test_ap_barbell () =
  (* Two triangles joined at node 2: node 2 is a cut vertex. *)
  let g =
    Graph.create ~n:5 ~costs:(Array.make 5 0.)
      ~edges:[ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ]
  in
  check (Alcotest.list Alcotest.int) "aps" [ 2 ] (Biconnect.articulation_points g)

let test_ap_bridge () =
  (* Two triangles joined by a bridge 2-3: both bridge endpoints are cut. *)
  let g =
    Graph.create ~n:6 ~costs:(Array.make 6 0.)
      ~edges:[ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (4, 5); (3, 5) ]
  in
  check (Alcotest.list Alcotest.int) "aps" [ 2; 3 ] (Biconnect.articulation_points g)

let test_ap_star () =
  let g = Graph.create ~n:4 ~costs:(Array.make 4 0.) ~edges:[ (0, 1); (0, 2); (0, 3) ] in
  check (Alcotest.list Alcotest.int) "hub" [ 0 ] (Biconnect.articulation_points g)

let test_ap_disconnected () =
  let g = Graph.create ~n:4 ~costs:(Array.make 4 0.) ~edges:[ (0, 1); (2, 3) ] in
  check (Alcotest.list Alcotest.int) "no aps" [] (Biconnect.articulation_points g);
  check Alcotest.bool "not biconnected (disconnected)" false (Biconnect.is_biconnected g)

let test_components_without () =
  let g = Graph.create ~n:3 ~costs:(Array.make 3 0.) ~edges:[ (0, 1); (1, 2) ] in
  let label = Biconnect.components_without g 1 in
  check Alcotest.int "removed" (-1) label.(1);
  check Alcotest.bool "split" true (label.(0) <> label.(2))

let prop_ap_matches_removal_oracle =
  (* v is an articulation point iff removing it disconnects its component:
     cross-check Hopcroft-Tarjan against the component-counting oracle. *)
  QCheck.Test.make ~name:"articulation points = removal oracle" ~count:60
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 1) in
      let n = 8 in
      let p = 0.15 +. (p *. 0.5) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng p then edges := (u, v) :: !edges
        done
      done;
      let g = Graph.create ~n ~costs:(Array.make n 0.) ~edges:!edges in
      let count_components skip =
        let label = Biconnect.components_without g skip in
        let ids = Hashtbl.create 8 in
        Array.iter (fun l -> if l >= 0 then Hashtbl.replace ids l ()) label;
        Hashtbl.length ids
      in
      let base = count_components (-1) in
      let aps = Biconnect.articulation_points g in
      let ok = ref true in
      for v = 0 to n - 1 do
        (* Removing an isolated node or a component by itself can reduce
           the count; an articulation point strictly increases it. *)
        let without = count_components v in
        let is_ap = List.mem v aps in
        let oracle_ap = without > base - (if Graph.degree g v = 0 then 1 else 0) && Graph.degree g v > 0 in
        let oracle_ap = oracle_ap && without > base in
        if is_ap <> oracle_ap then ok := false
      done;
      !ok)

(* --- Generators --- *)

let cost_model = Gen.Uniform_int (1, 10)

let test_gen_ring_biconnected () =
  let g = Gen.ring ~n:10 ~costs:(Array.make 10 1.) in
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  check Alcotest.int "edges" 10 (Graph.num_edges g)

let test_gen_chordal_ring () =
  let rng = Rng.create 1 in
  let g = Gen.chordal_ring rng ~n:20 ~chords:10 cost_model in
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  check Alcotest.bool "has chords" true (Graph.num_edges g > 20)

let test_gen_erdos_renyi_biconnected () =
  let rng = Rng.create 2 in
  for _ = 1 to 10 do
    let g = Gen.erdos_renyi rng ~n:15 ~p:0.15 cost_model in
    check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g)
  done

let test_gen_waxman_biconnected () =
  let rng = Rng.create 3 in
  for _ = 1 to 5 do
    let g = Gen.waxman rng ~n:20 ~alpha:0.6 ~beta:0.3 cost_model in
    check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g)
  done

let test_gen_ba_biconnected () =
  let rng = Rng.create 4 in
  for _ = 1 to 5 do
    let g = Gen.barabasi_albert rng ~n:30 ~m:2 cost_model in
    check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g)
  done

let test_gen_ba_rejects_m1 () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "m=1" (Invalid_argument "Gen.barabasi_albert: need m >= 2")
    (fun () -> ignore (Gen.barabasi_albert rng ~n:10 ~m:1 cost_model))

let test_gen_costs_in_range () =
  let rng = Rng.create 6 in
  let costs = Gen.draw_costs rng (Gen.Uniform_int (2, 5)) 100 in
  Array.iter
    (fun c -> check Alcotest.bool "range" true (c >= 2. && c <= 5. && Float.is_integer c))
    costs;
  let costs = Gen.draw_costs rng (Gen.Constant 3.5) 10 in
  Array.iter (fun c -> checkf "constant" 3.5 c) costs

let test_gen_deterministic () =
  let g1 = Gen.erdos_renyi (Rng.create 42) ~n:12 ~p:0.3 cost_model in
  let g2 = Gen.erdos_renyi (Rng.create 42) ~n:12 ~p:0.3 cost_model in
  check Alcotest.bool "same edges" true (Graph.edges g1 = Graph.edges g2);
  check Alcotest.bool "same costs" true (Graph.costs g1 = Graph.costs g2)

let test_ensure_biconnected_identity () =
  let rng = Rng.create 7 in
  let g = Gen.ring ~n:8 ~costs:(Array.make 8 1.) in
  let g' = Gen.ensure_biconnected rng g in
  check Alcotest.bool "unchanged" true (Graph.edges g = Graph.edges g')

let test_ensure_biconnected_repairs_path () =
  let rng = Rng.create 8 in
  let g = Graph.create ~n:6 ~costs:(Array.make 6 1.) ~edges:[ (0,1); (1,2); (2,3); (3,4); (4,5) ] in
  let g' = Gen.ensure_biconnected rng g in
  check Alcotest.bool "now biconnected" true (Biconnect.is_biconnected g')

let test_gen_complete () =
  let g = Gen.complete ~n:5 ~costs:(Array.make 5 1.) in
  check Alcotest.int "edges" 10 (Graph.num_edges g);
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  (* On a clique with uniform costs every LCP is the direct edge. *)
  for src = 0 to 4 do
    for dst = 0 to 4 do
      if src <> dst then
        match Dijkstra.lcp g ~src ~dst with
        | Some e -> check Alcotest.int "direct" 2 (List.length e.Dijkstra.path)
        | None -> Alcotest.fail "clique disconnected?"
    done
  done

let test_gen_grid_mesh () =
  (* A true mesh: rows*(cols-1) + cols*(rows-1) edges, corner degree 2,
     boundary degree 3, interior degree 4 — no wrap-around edges. *)
  let g = Gen.grid ~rows:3 ~cols:4 ~costs:(Array.make 12 1.) in
  check Alcotest.int "nodes" 12 (Graph.n g);
  check Alcotest.int "edges" 17 (Graph.num_edges g);
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  check Alcotest.bool "no wrap edge" false (Graph.has_edge g 0 3);
  let degs = List.init 12 (Graph.degree g) |> List.sort compare in
  check (Alcotest.list Alcotest.int) "degree profile"
    [ 2; 2; 2; 2; 3; 3; 3; 3; 3; 3; 4; 4 ] degs

let test_gen_grid_2x3_edge_set () =
  let g = Gen.grid ~rows:2 ~cols:3 ~costs:(Array.make 6 1.) in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "exact edges"
    [ (0, 1); (0, 3); (1, 2); (1, 4); (2, 5); (3, 4); (4, 5) ]
    (Graph.edges g)

let test_gen_torus () =
  (* Both dimensions >= 3: the torus is 4-regular with 2n edges. *)
  let g = Gen.torus ~rows:3 ~cols:4 ~costs:(Array.make 12 1.) in
  check Alcotest.int "nodes" 12 (Graph.n g);
  check Alcotest.int "edges" 24 (Graph.num_edges g);
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  for v = 0 to 11 do
    check Alcotest.int "4-regular" 4 (Graph.degree g v)
  done;
  check Alcotest.bool "wrap edge present" true (Graph.has_edge g 0 8)

let test_gen_torus_2x2 () =
  (* Wrap edges collapse on a 2x2 torus: it degenerates to the 4-cycle but
     must still be biconnected. *)
  let g = Gen.torus ~rows:2 ~cols:2 ~costs:(Array.make 4 1.) in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "exact edges"
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]
    (Graph.edges g);
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g)

let test_gen_petersen () =
  let g = Gen.petersen ~costs:(Array.make 10 1.) in
  check Alcotest.int "15 edges" 15 (Graph.num_edges g);
  for v = 0 to 9 do
    check Alcotest.int "3-regular" 3 (Graph.degree g v)
  done;
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  check Alcotest.int "diameter 2" 2 (Graph.hop_diameter g)

let test_is_connected_50k_ring () =
  (* Regression: the recursive DFS blew the OCaml stack on large
     path-like graphs; [ensure_biconnected] hits this on every generated
     topology. A ring forces maximal DFS depth. *)
  let n = 50_000 in
  let g = Gen.ring ~n ~costs:(Array.make n 1.) in
  check Alcotest.bool "50k ring connected" true (Graph.is_connected g);
  (* Same scale, genuinely disconnected: a 50k path plus an isolated node. *)
  let edges = List.init (n - 2) (fun i -> (i, i + 1)) in
  let g = Graph.create ~n ~costs:(Array.make n 1.) ~edges in
  check Alcotest.bool "isolated node detected" false (Graph.is_connected g)

let test_add_random_edges_shortfall_raises () =
  (* Regression: the attempt cap used to trip silently, returning fewer
     chords than the descriptor claimed. A 6-ring has room for only 9
     chords, so asking for 20 must fail loudly. *)
  let rng = Rng.create 11 in
  (match Gen.chordal_ring rng ~n:6 ~chords:20 cost_model with
  | _ -> Alcotest.fail "expected Edge_shortfall"
  | exception Gen.Edge_shortfall { requested; added } ->
      check Alcotest.int "requested" 20 requested;
      check Alcotest.bool "partial progress reported" true
        (added >= 0 && added <= 9));
  (* A satisfiable request now delivers *exactly* the count asked for. *)
  let rng = Rng.create 12 in
  let g = Gen.chordal_ring rng ~n:20 ~chords:10 cost_model in
  check Alcotest.int "exact chord count" 30 (Graph.num_edges g)

let test_gen_ba_exact_edge_count () =
  (* O(E) BA attaches exactly m distinct edges per arrival, so the edge
     count is exactly C(m+1,2) + m(n-m-1) — any duplicate or self edge
     would be collapsed by [Graph.create] and break the equality. *)
  let rng = Rng.create 13 in
  let n = 400 and m = 2 in
  let g = Gen.barabasi_albert rng ~n ~m cost_model in
  check Alcotest.int "exact edge count" (3 + (m * (n - m - 1))) (Graph.num_edges g)

let test_gen_ba_degree_distribution () =
  (* Preferential attachment must produce hubs: max degree well above the
     median (which stays near m). *)
  let rng = Rng.create 14 in
  let n = 1000 and m = 2 in
  let g = Gen.barabasi_albert rng ~n ~m cost_model in
  let degs = Array.init n (Graph.degree g) in
  Array.sort compare degs;
  let median = degs.(n / 2) in
  let max_deg = degs.(n - 1) in
  check Alcotest.bool "median near m" true (median <= 2 * m);
  check Alcotest.bool "max degree >> median" true (max_deg >= 4 * median)

let test_as_like_annotations_well_formed () =
  let rng = Rng.create 15 in
  let n = 200 and m = 3 in
  let g, annot = Gen.as_like rng ~n ~m cost_model in
  check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
  (* Every edge annotated exactly once, and every annotation is an edge. *)
  let norm (u, v) = if u < v then (u, v) else (v, u) in
  let annot_pairs = List.map (fun (u, v, _) -> norm (u, v)) annot in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "annotations cover the edge set exactly once" (Graph.edges g)
    (List.sort compare annot_pairs);
  List.iter
    (fun (u, v, rel) ->
      match rel with
      | Gen.Peer ->
          (* Peering is confined to the tier-1 seed clique. *)
          check Alcotest.bool "peer edge inside seed clique" true (u <= m && v <= m)
      | Gen.Customer_provider ->
          (* The customer is the later arrival, so it attaches to a
             strictly earlier incumbent. *)
          check Alcotest.bool "customer arrived after provider" true
            (u > v && u > m))
    annot;
  let peers = List.length (List.filter (fun (_, _, r) -> r = Gen.Peer) annot) in
  check Alcotest.int "seed clique fully peered" ((m + 1) * m / 2) peers

let prop_scale_generators_biconnected_cost_valid =
  (* ISSUE 6: generated topologies at n in {100, 1k} are biconnected and
     cost-valid (finite, within the declared model range). *)
  QCheck.Test.make ~name:"BA/AS-like at n in {100,1k} biconnected, costs valid"
    ~count:8
    QCheck.(triple small_nat (int_range 2 4) bool)
    (fun (seed, m, big) ->
      let n = if big then 1000 else 100 in
      let rng = Rng.create (seed + 9000) in
      let g, annot = Gen.as_like rng ~n ~m (Gen.Uniform_int (1, 10)) in
      let costs_ok =
        Graph.fold_nodes
          (fun v acc ->
            let c = Graph.cost g v in
            acc && Float.is_finite c && c >= 1. && c <= 10.)
          g true
      in
      Biconnect.is_biconnected g && costs_ok
      && List.length annot = Graph.num_edges g)

let prop_gen_always_biconnected =
  QCheck.Test.make ~name:"generators always yield biconnected graphs" ~count:40
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 100) in
      let n = 6 + (seed mod 20) in
      let p = 0.05 +. (p *. 0.4) in
      let g = Gen.erdos_renyi rng ~n ~p cost_model in
      Biconnect.is_biconnected g)

let prop_grid_invariants =
  (* A rows x cols mesh has exactly rows(cols-1) + cols(rows-1) edges and
     every degree in 2..4 (corners 2, edges 3, interior 4). *)
  QCheck.Test.make ~name:"grid edge count and degree bounds" ~count:60
    QCheck.(pair (int_range 2 6) (int_range 2 6))
    (fun (rows, cols) ->
      let rng = Rng.create ((rows * 31) + cols) in
      let g =
        Gen.grid ~rows ~cols ~costs:(Gen.draw_costs rng cost_model (rows * cols))
      in
      Graph.n g = rows * cols
      && Graph.num_edges g = (rows * (cols - 1)) + (cols * (rows - 1))
      && Graph.fold_nodes
           (fun v acc -> acc && Graph.degree g v >= 2 && Graph.degree g v <= 4)
           g true)

let prop_torus_invariants =
  (* With both dimensions >= 3 no wrap edge collapses: 4-regular, 2*rows*cols
     edges. *)
  QCheck.Test.make ~name:"torus 4-regular with 2rc edges" ~count:60
    QCheck.(pair (int_range 3 6) (int_range 3 6))
    (fun (rows, cols) ->
      let rng = Rng.create ((rows * 37) + cols) in
      let g =
        Gen.torus ~rows ~cols ~costs:(Gen.draw_costs rng cost_model (rows * cols))
      in
      Graph.n g = rows * cols
      && Graph.num_edges g = 2 * rows * cols
      && Graph.fold_nodes (fun v acc -> acc && Graph.degree g v = 4) g true)

let prop_dijkstra_matches_bellman_ford =
  (* Independent oracle: n rounds of Bellman-Ford relaxation over the
     FPSS node-cost metric (transit nodes pay, endpoints do not). *)
  QCheck.Test.make ~name:"dijkstra matches bellman-ford oracle" ~count:60
    QCheck.(triple small_nat small_nat (float_bound_inclusive 1.))
    (fun (seed, dst0, p) ->
      let rng = Rng.create (seed + 7100) in
      let n = 5 + (seed mod 6) in
      let p = 0.3 +. (p *. 0.4) in
      let g = Gen.erdos_renyi rng ~n ~p cost_model in
      let dst = dst0 mod n in
      let d = Array.make n infinity in
      d.(dst) <- 0.;
      for _ = 1 to n do
        for v = 0 to n - 1 do
          if v <> dst then
            List.iter
              (fun u ->
                let cand = if u = dst then 0. else Graph.cost g u +. d.(u) in
                if cand < d.(v) then d.(v) <- cand)
              (Graph.neighbors g v)
        done
      done;
      let ok = ref true in
      for v = 0 to n - 1 do
        if v <> dst then
          match Dijkstra.dist g ~src:v ~dst with
          | Some c -> if abs_float (c -. d.(v)) > 1e-9 then ok := false
          | None -> if d.(v) < infinity then ok := false
      done;
      !ok)

(* --- Metrics --- *)

module Metrics = Damd_graph.Metrics

let test_metrics_ring () =
  let g = Gen.ring ~n:6 ~costs:(Array.make 6 1.) in
  let m = Metrics.compute g in
  check Alcotest.int "nodes" 6 m.Metrics.nodes;
  check Alcotest.int "edges" 6 m.Metrics.edges;
  check Alcotest.int "min degree" 2 m.Metrics.min_degree;
  check Alcotest.int "max degree" 2 m.Metrics.max_degree;
  checkf "mean degree" 2. m.Metrics.mean_degree;
  check Alcotest.int "diameter" 3 m.Metrics.hop_diameter;
  checkf "no triangles" 0. m.Metrics.clustering;
  check Alcotest.bool "biconnected" true m.Metrics.biconnected

let test_metrics_clique () =
  let n = 5 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let g = Graph.create ~n ~costs:(Array.make n 1.) ~edges:!edges in
  let m = Metrics.compute g in
  checkf "full clustering" 1. m.Metrics.clustering;
  check Alcotest.int "diameter 1" 1 m.Metrics.hop_diameter;
  checkf "mean distance 1" 1. m.Metrics.mean_hop_distance

let test_metrics_diameter_matches_graph () =
  let rng = Rng.create 30 in
  for _ = 1 to 10 do
    let g = Gen.erdos_renyi rng ~n:12 ~p:0.3 (Gen.Uniform_int (1, 5)) in
    let m = Metrics.compute g in
    check Alcotest.int "diameters agree" (Graph.hop_diameter g) m.Metrics.hop_diameter
  done

let test_degree_histogram () =
  let g = Graph.create ~n:4 ~costs:(Array.make 4 1.) ~edges:[ (0, 1); (0, 2); (0, 3) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "star histogram" [ (1, 3); (3, 1) ]
    (Metrics.degree_histogram g)

let prop_metrics_mean_distance_bounds =
  QCheck.Test.make ~name:"1 <= mean hop distance <= diameter" ~count:40
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 70) in
      let n = 5 + (seed mod 10) in
      let g = Gen.erdos_renyi rng ~n ~p:(0.2 +. (p *. 0.5)) (Gen.Uniform_int (1, 5)) in
      let m = Metrics.compute g in
      m.Metrics.mean_hop_distance >= 1.
      && m.Metrics.mean_hop_distance <= float_of_int m.Metrics.hop_diameter +. 1e-9)

let test_metrics_ba_heavy_tail () =
  (* Preferential attachment yields a more skewed degree distribution than
     an ER graph of the same density. *)
  let rng = Rng.create 31 in
  let ba = Gen.barabasi_albert rng ~n:60 ~m:2 (Gen.Uniform_int (1, 5)) in
  let m = Metrics.compute ba in
  check Alcotest.bool "has hub" true (m.Metrics.max_degree >= 3 * m.Metrics.min_degree)

let suites =
  [
    ( "graph.core",
      [
        Alcotest.test_case "create basic" `Quick test_create_basic;
        Alcotest.test_case "dedups edges" `Quick test_create_dedups_edges;
        Alcotest.test_case "rejects self-loop" `Quick test_create_rejects_self_loop;
        Alcotest.test_case "rejects negative cost" `Quick test_create_rejects_negative_cost;
        Alcotest.test_case "rejects bad edge" `Quick test_create_rejects_out_of_range_edge;
        Alcotest.test_case "with_cost functional" `Quick test_with_cost_is_functional;
        Alcotest.test_case "edges sorted unique" `Quick test_edges_sorted_unique;
        Alcotest.test_case "connectivity" `Quick test_connectivity;
        Alcotest.test_case "to_dot" `Quick test_to_dot_mentions_nodes;
      ] );
    ( "graph.figure1",
      [
        Alcotest.test_case "shape" `Quick test_fig1_shape;
        Alcotest.test_case "X->Z cost 2 via X-D-C-Z" `Quick test_fig1_x_to_z;
        Alcotest.test_case "Z->D cost 1 via Z-C-D" `Quick test_fig1_z_to_d;
        Alcotest.test_case "B->D cost 0" `Quick test_fig1_b_to_d;
        Alcotest.test_case "Example 1 manipulation" `Quick test_fig1_example1_manipulation;
        Alcotest.test_case "LCP tree from Z" `Quick test_fig1_lcp_tree;
      ] );
    ( "graph.dijkstra",
      [
        Alcotest.test_case "same node" `Quick test_dijkstra_same_node;
        Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
        Alcotest.test_case "avoid" `Quick test_dijkstra_avoid;
        Alcotest.test_case "avoid endpoint rejected" `Quick test_dijkstra_avoid_endpoint_rejected;
        Alcotest.test_case "transit nodes" `Quick test_dijkstra_transit_nodes;
        Alcotest.test_case "matches brute force" `Quick test_dijkstra_matches_brute_force;
        Alcotest.test_case "all_to_dest consistent" `Quick test_all_to_dest_consistent;
        QCheck_alcotest.to_alcotest prop_dijkstra_matches_bellman_ford;
        QCheck_alcotest.to_alcotest prop_dijkstra_triangle;
        QCheck_alcotest.to_alcotest prop_dijkstra_symmetric;
        QCheck_alcotest.to_alcotest prop_avoid_no_worse;
      ] );
    ( "graph.biconnect",
      [
        Alcotest.test_case "path graph" `Quick test_ap_path_graph;
        Alcotest.test_case "cycle" `Quick test_ap_cycle;
        Alcotest.test_case "barbell" `Quick test_ap_barbell;
        Alcotest.test_case "bridge" `Quick test_ap_bridge;
        Alcotest.test_case "star" `Quick test_ap_star;
        Alcotest.test_case "disconnected" `Quick test_ap_disconnected;
        Alcotest.test_case "components_without" `Quick test_components_without;
        QCheck_alcotest.to_alcotest prop_ap_matches_removal_oracle;
      ] );
    ( "graph.metrics",
      [
        Alcotest.test_case "ring" `Quick test_metrics_ring;
        Alcotest.test_case "clique" `Quick test_metrics_clique;
        Alcotest.test_case "diameter agrees" `Quick test_metrics_diameter_matches_graph;
        Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
        Alcotest.test_case "BA heavy tail" `Quick test_metrics_ba_heavy_tail;
        QCheck_alcotest.to_alcotest prop_metrics_mean_distance_bounds;
      ] );
    ( "graph.gen",
      [
        Alcotest.test_case "ring" `Quick test_gen_ring_biconnected;
        Alcotest.test_case "chordal ring" `Quick test_gen_chordal_ring;
        Alcotest.test_case "erdos-renyi" `Quick test_gen_erdos_renyi_biconnected;
        Alcotest.test_case "waxman" `Quick test_gen_waxman_biconnected;
        Alcotest.test_case "barabasi-albert" `Quick test_gen_ba_biconnected;
        Alcotest.test_case "ba rejects m=1" `Quick test_gen_ba_rejects_m1;
        Alcotest.test_case "costs in range" `Quick test_gen_costs_in_range;
        Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "ensure_biconnected identity" `Quick test_ensure_biconnected_identity;
        Alcotest.test_case "repairs a path graph" `Quick test_ensure_biconnected_repairs_path;
        Alcotest.test_case "complete" `Quick test_gen_complete;
        Alcotest.test_case "grid mesh" `Quick test_gen_grid_mesh;
        Alcotest.test_case "grid 2x3 edge set" `Quick test_gen_grid_2x3_edge_set;
        Alcotest.test_case "torus" `Quick test_gen_torus;
        Alcotest.test_case "torus 2x2" `Quick test_gen_torus_2x2;
        Alcotest.test_case "petersen" `Quick test_gen_petersen;
        Alcotest.test_case "is_connected 50k ring (iterative DFS)" `Quick
          test_is_connected_50k_ring;
        Alcotest.test_case "add_random_edges shortfall raises" `Quick
          test_add_random_edges_shortfall_raises;
        Alcotest.test_case "ba exact edge count" `Quick test_gen_ba_exact_edge_count;
        Alcotest.test_case "ba degree distribution" `Quick
          test_gen_ba_degree_distribution;
        Alcotest.test_case "as_like annotations well-formed" `Quick
          test_as_like_annotations_well_formed;
        QCheck_alcotest.to_alcotest prop_scale_generators_biconnected_cost_valid;
        QCheck_alcotest.to_alcotest prop_gen_always_biconnected;
        QCheck_alcotest.to_alcotest prop_grid_invariants;
        QCheck_alcotest.to_alcotest prop_torus_invariants;
      ] );
  ]

(* Tests for Damd_util: RNG determinism and distribution sanity, statistics,
   the priority queue, and the table renderer. *)

module Rng = Damd_util.Rng
module Stats = Damd_util.Stats
module Pqueue = Damd_util.Pqueue
module Table = Damd_util.Table
module Json = Damd_util.Json

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  check Alcotest.int64 "copy continues identically" va vb;
  (* advancing the copy does not disturb the original *)
  let _ = Rng.bits64 b in
  let a' = Rng.copy a in
  check Alcotest.int64 "original unaffected" (Rng.bits64 a) (Rng.bits64 a')

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Rng.bits64 b) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check Alcotest.bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    check Alcotest.bool "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 5 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 6) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all (fun b -> b) seen)

let test_rng_float_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check Alcotest.bool "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_float_mean () =
  let rng = Rng.create 8 in
  let xs = List.init 20000 (fun _ -> Rng.float rng 1.0) in
  let m = Stats.mean xs in
  check Alcotest.bool "mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_bernoulli () =
  let rng = Rng.create 10 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000. in
  check Alcotest.bool "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let xs = List.init 20000 (fun _ -> Rng.exponential rng 2.0) in
  let m = Stats.mean xs in
  check Alcotest.bool "mean near 1/rate" true (Float.abs (m -. 0.5) < 0.03)

let test_rng_permutation () =
  let rng = Rng.create 12 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_rng_subset () =
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    let s = Rng.subset rng 5 20 in
    check Alcotest.int "size" 5 (List.length s);
    check Alcotest.bool "sorted distinct" true (List.sort_uniq compare s = s);
    List.iter (fun x -> check Alcotest.bool "range" true (x >= 0 && x < 20)) s
  done

let test_rng_shuffle_preserves_elements () =
  let rng = Rng.create 14 in
  let a = Array.init 30 (fun i -> i * i) in
  let orig = Array.copy a in
  Rng.shuffle rng a;
  Array.sort compare a;
  Array.sort compare orig;
  check (Alcotest.array Alcotest.int) "same multiset" orig a

(* --- Stats --- *)

let test_stats_mean () =
  checkf "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  checkf "empty mean" 0. (Stats.mean [])

let test_stats_stddev () =
  checkf "stddev" (sqrt (14. /. 3.)) (Stats.stddev [ 1.; 2.; 3.; 6. ]);
  checkf "singleton" 0. (Stats.stddev [ 5. ])

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  checkf "p0" 1. (Stats.percentile 0. xs);
  checkf "p50" 3. (Stats.percentile 50. xs);
  checkf "p100" 5. (Stats.percentile 100. xs);
  checkf "p25 interpolates" 2. (Stats.percentile 25. xs)

let test_stats_median_even () = checkf "median" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ])

let test_stats_summary () =
  let s = Stats.summarize [ 3.; 1.; 2. ] in
  check Alcotest.int "n" 3 s.Stats.n;
  checkf "min" 1. s.Stats.min;
  checkf "max" 3. s.Stats.max;
  checkf "median" 2. s.Stats.median

let test_stats_single_element () =
  let s = Stats.summarize [ 7. ] in
  check Alcotest.int "n" 1 s.Stats.n;
  checkf "mean" 7. s.Stats.mean;
  checkf "stddev" 0. s.Stats.stddev;
  checkf "min" 7. s.Stats.min;
  checkf "max" 7. s.Stats.max;
  checkf "median" 7. s.Stats.median;
  checkf "p95" 7. s.Stats.p95;
  checkf "p99" 7. s.Stats.p99

let test_stats_summary_p99 () =
  (* 1..100: p99 = 99th-percentile rank interpolation over the sorted
     array — distinct from p95 on a spread this wide. *)
  let s = Stats.summarize (List.init 100 (fun i -> float_of_int (i + 1))) in
  checkf "p95" 95.05 s.Stats.p95;
  checkf "p99" 99.01 s.Stats.p99;
  check Alcotest.bool "p99 above p95" true (s.Stats.p99 > s.Stats.p95);
  check Alcotest.bool "p99 below max" true (s.Stats.p99 <= s.Stats.max)

let test_stats_summary_unsorted_negative () =
  (* Float.compare (not polymorphic compare on boxed floats) must sort
     negatives below positives. *)
  let s = Stats.summarize [ 2.; -3.; 0.5; -1. ] in
  checkf "min" (-3.) s.Stats.min;
  checkf "max" 2. s.Stats.max;
  checkf "median" (-0.25) s.Stats.median

let test_stats_empty_raises () =
  Alcotest.check_raises "empty summarize" (Invalid_argument "Stats.summarize: empty list")
    (fun () -> ignore (Stats.summarize []))

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.; 1.; 2.; 3. ] in
  check Alcotest.int "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check Alcotest.int "counts sum" 4 total

(* --- Pqueue --- *)

let test_pq_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3., "c"); (1., "a"); (2., "b") ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  check Alcotest.string "a" "a" (pop ());
  check Alcotest.string "b" "b" (pop ());
  check Alcotest.string "c" "c" (pop ());
  check Alcotest.bool "empty" true (Pqueue.is_empty q)

let test_pq_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ "first"; "second"; "third" ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  check Alcotest.string "fifo 1" "first" (pop ());
  check Alcotest.string "fifo 2" "second" (pop ());
  check Alcotest.string "fifo 3" "third" (pop ())

let test_pq_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 5. 5;
  Pqueue.push q 1. 1;
  (match Pqueue.pop q with
  | Some (p, v) ->
      checkf "prio" 1. p;
      check Alcotest.int "val" 1 v
  | None -> Alcotest.fail "unexpected empty");
  Pqueue.push q 0.5 0;
  Pqueue.push q 9. 9;
  let order = List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> -1) in
  check (Alcotest.list Alcotest.int) "order" [ 0; 5; 9 ] order

let test_pq_sorts_random () =
  let rng = Rng.create 20 in
  let q = Pqueue.create () in
  let xs = List.init 500 (fun _ -> Rng.float rng 100.) in
  List.iter (fun x -> Pqueue.push q x x) xs;
  check Alcotest.int "length" 500 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  let out = drain [] in
  check (Alcotest.list (Alcotest.float 0.)) "sorted" (List.sort compare xs) out

let test_pq_peek () =
  let q = Pqueue.create () in
  check Alcotest.bool "peek empty" true (Pqueue.peek q = None);
  Pqueue.push q 2. "x";
  Pqueue.push q 1. "y";
  (match Pqueue.peek q with
  | Some (_, v) -> check Alcotest.string "peek min" "y" v
  | None -> Alcotest.fail "unexpected empty");
  check Alcotest.int "peek does not pop" 2 (Pqueue.length q)

let test_pq_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 1. ();
  Pqueue.clear q;
  check Alcotest.bool "cleared" true (Pqueue.is_empty q)

let test_pq_clear_then_reuse () =
  let q = Pqueue.create () in
  List.iter (fun x -> Pqueue.push q x (int_of_float x)) [ 4.; 2.; 8.; 1. ];
  Pqueue.clear q;
  check Alcotest.int "empty after clear" 0 (Pqueue.length q);
  check Alcotest.bool "pop after clear" true (Pqueue.pop q = None);
  (* Reuse must behave like a fresh queue: ordering and FIFO ties intact. *)
  List.iter (fun x -> Pqueue.push q x (int_of_float x)) [ 7.; 3.; 5. ];
  Pqueue.push q 3. 30;
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  check (Alcotest.list Alcotest.int) "order after reuse" [ 3; 30; 5; 7 ] (drain [])

let test_pq_pop_releases_slot () =
  (* After popping, the vacated slot must not retain the element: push a
     sentinel and confirm the queue still behaves (the leak itself is only
     observable via the GC, but this pins the pop/None-slot bookkeeping). *)
  let q = Pqueue.create () in
  for i = 1 to 64 do
    Pqueue.push q (float_of_int i) i
  done;
  for i = 1 to 64 do
    match Pqueue.pop q with
    | Some (_, v) -> check Alcotest.int "drain order" i v
    | None -> Alcotest.fail "unexpected empty"
  done;
  Pqueue.push q 1. 99;
  check Alcotest.bool "usable after full drain" true (Pqueue.pop q = Some (1., 99))

(* --- Table --- *)

let test_table_renders () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (Astring.String.is_infix ~affix:"name" s);
  check Alcotest.bool "contains cell" true
    (Astring.String.is_infix ~affix:"alpha" s)

let test_table_alignment () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "100" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  (match widths with
  | [] -> Alcotest.fail "no output"
  | w :: rest -> List.iter (fun w' -> check Alcotest.int "uniform width" w w') rest)

let test_table_too_many_cells () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  let s = Table.render t in
  check Alcotest.bool "renders" true (String.length s > 0)

let test_cell_float () =
  check Alcotest.string "integer valued" "3" (Table.cell_float 3.0);
  check Alcotest.string "fractional" "3.14" (Table.cell_float 3.14159);
  check Alcotest.string "decimals" "3.1416" (Table.cell_float ~decimals:4 3.14159)

let test_cell_pct () = check Alcotest.string "pct" "50.0%" (Table.cell_pct 0.5)

let test_table_to_csv () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "has,comma"; "has\"quote" ];
  check Alcotest.string "csv" "a,b\nx,1\n\"has,comma\",\"has\"\"quote\"\n"
    (Table.to_csv t)

(* --- Json --- *)

let test_json_renders () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\n");
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  let s = Json.to_string ~indent:0 j in
  check Alcotest.string "compact object"
    "{\"s\":\"a\\\"b\\n\",\"i\":42,\"f\":1.5,\"b\":true,\"n\":null,\"l\":[1,2]}" s

let test_json_floats () =
  check Alcotest.string "integral float" "[1]" (Json.to_string ~indent:0 (Json.List [ Json.Float 1. ]));
  check Alcotest.string "non-finite is null" "[null,null,null]"
    (Json.to_string ~indent:0
       (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]));
  (* round-trips exactly through the printed representation *)
  let x = 0.1 +. 0.2 in
  let s = Json.to_string ~indent:0 (Json.Float x) in
  checkf "float round-trip" x (float_of_string s)

(* --- qcheck properties --- *)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_pq_is_sorting =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun xs ->
      let q = Pqueue.create () in
      List.iter (fun x -> Pqueue.push q x x) xs;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort compare xs)

let prop_pq_matches_model =
  (* Model-based: an arbitrary push/pop/clear interleaving (incl.
     clear-then-reuse) against a sorted association list keyed by
     (priority, arrival seq) — the exact FIFO-tie contract. *)
  QCheck.Test.make ~name:"pqueue matches sorted-list model" ~count:200
    QCheck.(list (pair (int_bound 9) (int_bound 50)))
    (fun ops ->
      let q = Pqueue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (kind, x) ->
          if kind < 5 then begin
            let p = float_of_int x in
            incr seq;
            Pqueue.push q p !seq;
            (* stable merge: equal priorities keep arrival order *)
            model := List.merge compare !model [ (p, !seq) ]
          end
          else if kind < 9 then begin
            match (!model, Pqueue.pop q) with
            | [], None -> ()
            | (p, v) :: rest, Some (p', v') ->
                model := rest;
                if p <> p' || v <> v' then ok := false
            | _ -> ok := false
          end
          else begin
            Pqueue.clear q;
            model := []
          end)
        ops;
      !ok && Pqueue.length q = List.length !model)

let prop_subset_valid =
  QCheck.Test.make ~name:"subset is sorted distinct in range" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let n = max a b and k = min a b in
      let rng = Rng.create (a + (31 * b)) in
      let s = Rng.subset rng k n in
      List.length s = k
      && List.sort_uniq compare s = s
      && List.for_all (fun x -> x >= 0 && x < n) s)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
        Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "float mean" `Quick test_rng_float_mean;
        Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
        Alcotest.test_case "subset" `Quick test_rng_subset;
        Alcotest.test_case "shuffle preserves elements" `Quick test_rng_shuffle_preserves_elements;
        QCheck_alcotest.to_alcotest prop_subset_valid;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "median even" `Quick test_stats_median_even;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "single element" `Quick test_stats_single_element;
        Alcotest.test_case "summary p99" `Quick test_stats_summary_p99;
        Alcotest.test_case "unsorted negative" `Quick test_stats_summary_unsorted_negative;
        Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        QCheck_alcotest.to_alcotest prop_percentile_bounds;
      ] );
    ( "util.pqueue",
      [
        Alcotest.test_case "order" `Quick test_pq_order;
        Alcotest.test_case "fifo ties" `Quick test_pq_fifo_ties;
        Alcotest.test_case "interleaved" `Quick test_pq_interleaved;
        Alcotest.test_case "sorts random" `Quick test_pq_sorts_random;
        Alcotest.test_case "peek" `Quick test_pq_peek;
        Alcotest.test_case "clear" `Quick test_pq_clear;
        Alcotest.test_case "clear then reuse" `Quick test_pq_clear_then_reuse;
        Alcotest.test_case "pop releases slot" `Quick test_pq_pop_releases_slot;
        QCheck_alcotest.to_alcotest prop_pq_is_sorting;
        QCheck_alcotest.to_alcotest prop_pq_matches_model;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "renders" `Quick test_json_renders;
        Alcotest.test_case "floats" `Quick test_json_floats;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "renders" `Quick test_table_renders;
        Alcotest.test_case "alignment" `Quick test_table_alignment;
        Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
        Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
        Alcotest.test_case "cell_float" `Quick test_cell_float;
        Alcotest.test_case "cell_pct" `Quick test_cell_pct;
        Alcotest.test_case "to_csv" `Quick test_table_to_csv;
      ] );
  ]

(* Tests for Damd_faithful: the wire-level protocol computations, node
   behaviour (captured-send unit tests), bank checkpoints and settlement,
   and the headline end-to-end properties — a faithful run certifies and
   reproduces the centralized FPSS tables exactly; every detectable
   deviation is caught (the §4.3 case analysis / Figure 2); no library
   deviation is profitable with checking on (Theorem 1); and profitable
   manipulations reappear when checking is disabled. *)

module Rng = Damd_util.Rng
module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Dijkstra = Damd_graph.Dijkstra
module Traffic = Damd_fpss.Traffic
module Game = Damd_fpss.Game
module Pricing = Damd_fpss.Pricing
module Tables = Damd_fpss.Tables
module Protocol = Damd_faithful.Protocol
module Adversary = Damd_faithful.Adversary
module Node = Damd_faithful.Node
module Bank = Damd_faithful.Bank
module Runner = Damd_faithful.Runner
module Analysis = Damd_faithful.Analysis
module Equilibrium = Damd_core.Equilibrium
module Faithfulness = Damd_core.Faithfulness
module Signer = Damd_crypto.Signer

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let fig1 = lazy (Gen.figure1 ())
let fig1_traffic = Traffic.uniform ~n:6 ~rate:1.

let ring5 =
  lazy (Gen.ring ~n:5 ~costs:[| 2.; 3.; 1.; 4.; 2. |])

(* --- Protocol --- *)

let test_protocol_empty_routing () =
  let t = Protocol.empty_routing ~n:4 ~self:2 in
  check Alcotest.bool "self entry" true (t.(2) <> None);
  check Alcotest.bool "others empty" true (t.(0) = None && t.(1) = None && t.(3) = None)

let test_protocol_recompute_routing_line () =
  (* 0 - 1 - 2 with cost 1 each: node 0 learns 2 via 1's table. *)
  let costs = [| 1.; 1.; 1. |] in
  let t1 = Protocol.empty_routing ~n:3 ~self:1 in
  t1.(2) <- Some { Dijkstra.cost = 0.; path = [ 1; 2 ] };
  let t0 =
    Protocol.recompute_routing ~self:0 ~n:3 ~costs ~neighbor_tables:[ (1, t1) ]
  in
  match t0.(2) with
  | Some e ->
      checkf "cost through 1" 1. e.Dijkstra.cost;
      check (Alcotest.list Alcotest.int) "path" [ 0; 1; 2 ] e.Dijkstra.path
  | None -> Alcotest.fail "missing entry"

let test_protocol_routing_loop_avoidance () =
  (* A neighbor's entry whose path already contains self is rejected. *)
  let costs = [| 1.; 1.; 1. |] in
  let t1 = Protocol.empty_routing ~n:3 ~self:1 in
  t1.(2) <- Some { Dijkstra.cost = 5.; path = [ 1; 0; 2 ] };
  let t0 =
    Protocol.recompute_routing ~self:0 ~n:3 ~costs ~neighbor_tables:[ (1, t1) ]
  in
  check Alcotest.bool "loop rejected" true (t0.(2) = None)

let test_protocol_digests_differ () =
  let a = Protocol.empty_routing ~n:3 ~self:0 in
  let b = Protocol.empty_routing ~n:3 ~self:0 in
  b.(2) <- Some { Dijkstra.cost = 1.; path = [ 0; 2 ] };
  check Alcotest.bool "digests differ" true
    (Protocol.routing_digest a <> Protocol.routing_digest b);
  check Alcotest.bool "equality check" false (Protocol.routing_equal a b)

let test_protocol_pricing_digest_sees_tags () =
  let a : Protocol.pricing_table = [| [ { Protocol.transit = 1; price = 2.; tags = [ 0 ] } ] |] in
  let b : Protocol.pricing_table = [| [ { Protocol.transit = 1; price = 2.; tags = [ 3 ] } ] |] in
  check Alcotest.bool "tags hashed" true
    (Protocol.pricing_digest a <> Protocol.pricing_digest b)

let test_protocol_msg_sizes () =
  let u = Protocol.Cost_announce { origin = 0; cost = 1. } in
  check Alcotest.bool "positive" true (Protocol.msg_size (Protocol.Update u) > 0);
  let copy = Protocol.Copy { principal = 0; via = 1; inner = u } in
  check Alcotest.bool "copy larger" true
    (Protocol.msg_size copy > Protocol.msg_size (Protocol.Update u));
  let p = Protocol.Packet { src = 0; dst = 1; rate = 1.; trace = [ 0; 2 ] } in
  check Alcotest.bool "packet sized" true (Protocol.msg_size p > 0)

let test_protocol_costs_digest () =
  check Alcotest.bool "cost digests" true
    (Protocol.costs_digest [| 1.; 2. |] <> Protocol.costs_digest [| 1.; 3. |]);
  check Alcotest.string "deterministic"
    (Protocol.costs_digest [| 1.; 2. |])
    (Protocol.costs_digest [| 1.; 2. |])

(* --- Node unit tests with captured sends --- *)

let line3_sets = [| [ 1 ]; [ 0; 2 ]; [ 1 ] |]

let capture () =
  let sent = ref [] in
  let send ~dst msg = sent := (dst, msg) :: !sent in
  (sent, send)

let test_node_announce_cost_faithful () =
  let node = Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:7. ~deviation:Adversary.Faithful () in
  let sent, send = capture () in
  Node.announce_cost node send;
  check Alcotest.int "two announcements" 2 (List.length !sent);
  List.iter
    (fun (_, msg) ->
      match msg with
      | Protocol.Update (Protocol.Cost_announce { origin; cost }) ->
          check Alcotest.int "origin" 1 origin;
          checkf "truthful" 7. cost
      | _ -> Alcotest.fail "unexpected message")
    !sent

let test_node_announce_cost_misreport () =
  let node =
    Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:7.
      ~deviation:(Adversary.Misreport_cost 2.) ()
  in
  let sent, send = capture () in
  Node.announce_cost node send;
  List.iter
    (fun (_, msg) ->
      match msg with
      | Protocol.Update (Protocol.Cost_announce { cost; _ }) -> checkf "lied" 2. cost
      | _ -> Alcotest.fail "unexpected message")
    !sent

let test_node_announce_cost_inconsistent () =
  let node =
    Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:7.
      ~deviation:(Adversary.Inconsistent_cost (1., 9.)) ()
  in
  let sent, send = capture () in
  Node.announce_cost node send;
  let costs =
    List.filter_map
      (fun (_, msg) ->
        match msg with
        | Protocol.Update (Protocol.Cost_announce { cost; _ }) -> Some cost
        | _ -> None)
      !sent
    |> List.sort_uniq compare
  in
  check Alcotest.int "two distinct values" 2 (List.length costs)

let test_node_cost_flood_forwards_once () =
  let node = Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1. ~deviation:Adversary.Faithful () in
  let sent, send = capture () in
  Node.on_cost_msg node send ~sender:0 (Protocol.Cost_announce { origin = 0; cost = 4. });
  check Alcotest.int "forwarded to the other neighbor" 1 (List.length !sent);
  Node.on_cost_msg node send ~sender:2 (Protocol.Cost_announce { origin = 0; cost = 4. });
  check Alcotest.int "duplicate not re-flooded" 1 (List.length !sent)

let test_node_finalize_costs () =
  let node = Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1. ~deviation:Adversary.Faithful () in
  let _, send = capture () in
  Node.announce_cost node send;
  check Alcotest.bool "incomplete" false (Node.finalize_costs node);
  Node.on_cost_msg node send ~sender:0 (Protocol.Cost_announce { origin = 0; cost = 4. });
  Node.on_cost_msg node send ~sender:2 (Protocol.Cost_announce { origin = 2; cost = 5. });
  check Alcotest.bool "complete" true (Node.finalize_costs node);
  checkf "stored" 4. node.Node.costs.(0)

let test_node_routing_update_forwards_copies () =
  let node = Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1. ~deviation:Adversary.Faithful () in
  let _, send0 = capture () in
  Node.announce_cost node send0;
  Node.on_cost_msg node send0 ~sender:0 (Protocol.Cost_announce { origin = 0; cost = 4. });
  Node.on_cost_msg node send0 ~sender:2 (Protocol.Cost_announce { origin = 2; cost = 5. });
  ignore (Node.finalize_costs node);
  let sent, send = capture () in
  let table0 = Protocol.empty_routing ~n:3 ~self:0 in
  Node.on_routing_msg node send ~sender:0
    (Protocol.Update (Protocol.Routing_update { origin = 0; table = table0 }));
  (* One copy to checker 2 (not back to 0), plus announcements of the
     updated table to both neighbors. *)
  let copies =
    List.filter (fun (_, m) -> match m with Protocol.Copy _ -> true | _ -> false) !sent
  in
  check Alcotest.int "one copy" 1 (List.length copies);
  (match copies with
  | [ (dst, Protocol.Copy { principal; via; _ }) ] ->
      check Alcotest.int "to the other checker" 2 dst;
      check Alcotest.int "principal" 1 principal;
      check Alcotest.int "via" 0 via
  | _ -> Alcotest.fail "copy shape");
  check Alcotest.bool "routing learned" true (node.Node.routing.(0) <> None)

let test_node_drop_copies_deviation () =
  let node =
    Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1.
      ~deviation:Adversary.Drop_routing_copies ()
  in
  node.Node.costs <- [| 4.; 1.; 5. |];
  let sent, send = capture () in
  let table0 = Protocol.empty_routing ~n:3 ~self:0 in
  Node.on_routing_msg node send ~sender:0
    (Protocol.Update (Protocol.Routing_update { origin = 0; table = table0 }));
  let copies =
    List.filter (fun (_, m) -> match m with Protocol.Copy _ -> true | _ -> false) !sent
  in
  check Alcotest.int "no copies" 0 (List.length copies)

let test_node_checker_rejects_bad_via () =
  let node = Node.create ~id:1 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1. ~deviation:Adversary.Faithful () in
  let _, send = capture () in
  (* A copy claiming provenance from node 1's own id... node 0's neighbors
     are just [1], so via=2 is not a checker of 0. *)
  Node.on_routing_msg node send ~sender:0
    (Protocol.Copy
       {
         principal = 0;
         via = 2;
         inner = Protocol.Routing_update { origin = 2; table = Protocol.empty_routing ~n:3 ~self:2 };
       });
  check Alcotest.bool "flagged" true
    (List.exists (fun (rule, _) -> rule = "CHECK2") node.Node.check_flags)

let test_node_payment_report () =
  let node = Node.create ~id:0 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1. ~deviation:Adversary.Faithful () in
  node.Node.pricing.(2) <- [ { Protocol.transit = 1; price = 3.; tags = [] } ];
  let traffic = Array.make_matrix 3 3 0. in
  traffic.(0).(2) <- 2.;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "owes transit" [ (1, 6.) ]
    (Node.payment_report node traffic)

let test_node_payment_report_underreports () =
  let node =
    Node.create ~id:0 ~n:3 ~neighbor_sets:line3_sets ~true_cost:1.
      ~deviation:(Adversary.Underreport_payments 0.25) ()
  in
  node.Node.pricing.(2) <- [ { Protocol.transit = 1; price = 4.; tags = [] } ];
  let traffic = Array.make_matrix 3 3 0. in
  traffic.(0).(2) <- 1.;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "scaled" [ (1, 1.) ]
    (Node.payment_report node traffic)

(* --- Bank --- *)

let test_bank_serialize_report_canonical () =
  check Alcotest.string "sorted" (Bank.serialize_report [ (2, 1.); (1, 3.) ])
    (Bank.serialize_report [ (1, 3.); (2, 1.) ])

let test_bank_checkpoint_costs () =
  let mk dev =
    Node.create ~id:0 ~n:2 ~neighbor_sets:[| [ 1 ]; [ 0 ] |] ~true_cost:1. ~deviation:dev ()
  in
  let a = mk Adversary.Faithful and b = mk Adversary.Faithful in
  a.Node.costs <- [| 1.; 2. |];
  b.Node.costs <- [| 1.; 2. |];
  check Alcotest.int "consistent" 0 (List.length (Bank.checkpoint_costs [| a; b |]));
  b.Node.costs <- [| 1.; 3. |];
  check Alcotest.int "inconsistent" 1 (List.length (Bank.checkpoint_costs [| a; b |]))

let test_bank_checkpoint_bytes_positive () =
  let g, _ = Lazy.force fig1 in
  let sets = Array.init 6 (Graph.neighbors g) in
  let nodes =
    Array.init 6 (fun id ->
        Node.create ~id ~n:6 ~neighbor_sets:sets ~true_cost:1. ~deviation:Adversary.Faithful ())
  in
  check Alcotest.bool "bytes > 0" true (Bank.checkpoint_bytes nodes > 0)

(* --- End-to-end: faithful runs --- *)

let faithful_run =
  lazy
    (let g, _ = Lazy.force fig1 in
     Runner.run_faithful ~graph:g ~traffic:fig1_traffic ())

let test_run_faithful_completes () =
  let r = Lazy.force faithful_run in
  check Alcotest.bool "completed" true r.Runner.completed;
  check Alcotest.int "no restarts" 0 r.Runner.restarts;
  check Alcotest.int "no detections" 0 (List.length r.Runner.detections)

let test_run_faithful_matches_centralized () =
  let g, _ = Lazy.force fig1 in
  let r = Lazy.force faithful_run in
  match r.Runner.tables with
  | None -> Alcotest.fail "no tables"
  | Some t ->
      let c = Pricing.compute g in
      check Alcotest.bool "routing" true (Tables.routing_equal t c);
      check Alcotest.bool "prices" true (Tables.prices_equal t c)

let test_run_faithful_matches_centralized_random () =
  let rng = Rng.create 701 in
  for _ = 1 to 3 do
    let g = Gen.chordal_ring rng ~n:8 ~chords:3 (Gen.Uniform_int (1, 8)) in
    let traffic = Traffic.uniform ~n:8 ~rate:1. in
    let r = Runner.run_faithful ~graph:g ~traffic () in
    check Alcotest.bool "completed" true r.Runner.completed;
    match r.Runner.tables with
    | None -> Alcotest.fail "no tables"
    | Some t ->
        let c = Pricing.compute g in
        check Alcotest.bool "routing" true (Tables.routing_equal t c);
        check Alcotest.bool "prices" true (Tables.prices_equal t c)
  done

let test_run_deterministic () =
  let g = Lazy.force ring5 in
  let traffic = Traffic.uniform ~n:5 ~rate:1. in
  let a = Runner.run_faithful ~graph:g ~traffic () in
  let b = Runner.run_faithful ~graph:g ~traffic () in
  check (Alcotest.array (Alcotest.float 0.)) "same utilities" a.Runner.utilities
    b.Runner.utilities;
  check Alcotest.int "same messages" a.Runner.construction_messages
    b.Runner.construction_messages

let test_run_all_traffic_delivered () =
  let r = Lazy.force faithful_run in
  (* uniform rate 1: each of the 6 sources delivers to 5 destinations *)
  ignore r;
  let g, _ = Lazy.force fig1 in
  let r = Runner.run_faithful ~graph:g ~traffic:fig1_traffic () in
  check Alcotest.bool "exec messages" true (r.Runner.execution_messages > 0)

let test_run_money_conserved_faithful () =
  (* With everyone faithful, transfers net to zero, so total utility =
     total delivered value minus total true transit cost. *)
  let g = Lazy.force ring5 in
  let traffic = Traffic.uniform ~n:5 ~rate:1. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  let total_u = Array.fold_left ( +. ) 0. r.Runner.utilities in
  (* every pair delivered: 20 flows of rate 1 at value 50 *)
  let delivered_value = 50. *. 20. in
  let tables = Option.get r.Runner.tables in
  let true_cost =
    Array.to_list (Array.init 5 (fun k -> Graph.cost g k *. Tables.transit_load tables traffic k))
    |> List.fold_left ( +. ) 0.
  in
  checkf "accounting identity" (delivered_value -. true_cost) total_u

(* --- Detection matrix (Figure 2 / §4.3) --- *)

let run_with_deviant g traffic node deviation =
  let deviations = Array.make (Graph.n g) Adversary.Faithful in
  deviations.(node) <- deviation;
  Runner.run ~graph:g ~traffic ~deviations ()

let test_every_detectable_construction_deviation_caught () =
  (* A deviation must be caught whenever it has any effect; a deviation
     that loses every first-arrival race (possible for the cost-forward
     corruption on a dense graph) is indistinguishable from faithful play
     and legitimately passes. *)
  let g, _ = Lazy.force fig1 in
  let faithful = Lazy.force faithful_run in
  List.iter
    (fun d ->
      if Adversary.detectable d && Adversary.is_construction d then begin
        let r = run_with_deviant g fig1_traffic 2 d in
        if r.Runner.completed then begin
          let no_effect =
            match (r.Runner.tables, faithful.Runner.tables) with
            | Some a, Some b -> Tables.routing_equal a b && Tables.prices_equal a b
            | _ -> false
          in
          if not no_effect then
            Alcotest.failf "%s escaped the construction checkpoints" (Adversary.name d)
        end
        else
          check Alcotest.bool
            (Adversary.name d ^ " produced detections")
            true
            (r.Runner.detections <> [])
      end)
    Adversary.library

let test_corrupt_cost_forward_caught_on_ring () =
  (* On a sparse ring the corrupter sits on the unique fast propagation
     path for half the nodes, so the corrupted facts land and the DATA1
     certificate must fire. *)
  let g = Gen.ring ~n:8 ~costs:(Array.make 8 2.) in
  let traffic = Traffic.uniform ~n:8 ~rate:1. in
  let r = run_with_deviant g traffic 1 (Adversary.Corrupt_cost_forward 3.) in
  check Alcotest.bool "not completed" false r.Runner.completed;
  check Alcotest.bool "DATA1 fired" true
    (List.exists (fun det -> det.Bank.rule = "DATA1") r.Runner.detections)

let test_every_execution_deviation_caught () =
  let g, _ = Lazy.force fig1 in
  List.iter
    (fun d ->
      if Adversary.is_execution d then begin
        let r = run_with_deviant g fig1_traffic 2 d in
        check Alcotest.bool (Adversary.name d ^ " completed construction") true
          r.Runner.completed;
        check Alcotest.bool
          (Adversary.name d ^ " flagged by EXEC audit")
          true
          (List.exists (fun det -> det.Bank.rule = "EXEC") r.Runner.detections)
      end)
    Adversary.library

let test_misreport_not_detected () =
  (* A consistent misreport is information revelation, not a protocol
     violation: the run completes cleanly (VCG handles the incentive). *)
  let g, _ = Lazy.force fig1 in
  let r = run_with_deviant g fig1_traffic 2 (Adversary.Misreport_cost 5.) in
  check Alcotest.bool "completed" true r.Runner.completed;
  check Alcotest.int "no detections" 0 (List.length r.Runner.detections)

let test_detection_attributes_culprit () =
  let g, _ = Lazy.force fig1 in
  let r = run_with_deviant g fig1_traffic 3 (Adversary.Miscompute_routing 2.) in
  check Alcotest.bool "culprit identified" true
    (List.exists
       (fun det -> det.Bank.rule = "BANK1" && det.Bank.culprit = Some 3)
       r.Runner.detections)

let test_deviant_checker_detected () =
  (* A node deviating in its checker role (corrupting copies) is also
     caught — the restart hits everyone, so checking stays incentive-
     compatible by the partitioning argument. *)
  let g, _ = Lazy.force fig1 in
  let r = run_with_deviant g fig1_traffic 5 (Adversary.Corrupt_routing_copies 1.) in
  check Alcotest.bool "not completed" false r.Runner.completed

(* --- Theorem 1: no profitable deviation with checking on --- *)

let test_no_profitable_deviation_fig1 () =
  let g, _ = Lazy.force fig1 in
  List.iter
    (fun d ->
      List.iter
        (fun node ->
          let gain =
            Runner.utility_gain ~graph:g ~traffic:fig1_traffic ~node ~deviation:d ()
          in
          if gain > 1e-6 then
            Alcotest.failf "node %d profits %g from %s" node gain (Adversary.name d))
        [ 0; 2; 3 ])
    Adversary.library

let test_no_profitable_deviation_ring () =
  let g = Lazy.force ring5 in
  let traffic = Traffic.uniform ~n:5 ~rate:1. in
  List.iter
    (fun d ->
      let gain = Runner.utility_gain ~graph:g ~traffic ~node:1 ~deviation:d () in
      if gain > 1e-6 then
        Alcotest.failf "node 1 profits %g from %s" gain (Adversary.name d))
    Adversary.library

(* --- The ablation: disable checking and manipulation pays --- *)

let unchecked = { Runner.default_params with Runner.checking = false }

let test_unchecked_underreporting_profits () =
  let g, _ = Lazy.force fig1 in
  let gain =
    Runner.utility_gain ~params:unchecked ~graph:g ~traffic:fig1_traffic ~node:4
      ~deviation:(Adversary.Underreport_payments 0.) ()
  in
  check Alcotest.bool "free riding pays when unchecked" true (gain > 0.)

let test_unchecked_some_construction_deviation_profits () =
  let g, _ = Lazy.force fig1 in
  let best =
    List.fold_left
      (fun best d ->
        List.fold_left
          (fun best node ->
            let gain =
              Runner.utility_gain ~params:unchecked ~graph:g ~traffic:fig1_traffic
                ~node ~deviation:d ()
            in
            Float.max best gain)
          best [ 0; 1; 2; 3; 4; 5 ])
      neg_infinity Adversary.library
  in
  check Alcotest.bool "a profitable manipulation exists unchecked" true (best > 1e-6)

(* --- Analysis: the executable Theorem 1 --- *)

let test_analysis_ex_post_nash_holds () =
  let g, _ = Lazy.force fig1 in
  let rng = Rng.create 702 in
  let report =
    Analysis.ex_post_nash_report ~rng ~profiles:2 ~base:g ~traffic:fig1_traffic ()
  in
  if not (Equilibrium.holds report) then
    Alcotest.failf "ex post Nash violated, max gain %g" report.Equilibrium.max_gain

let test_analysis_evidence_certifies () =
  let g, _ = Lazy.force fig1 in
  let rng = Rng.create 703 in
  let evidence = Analysis.evidence ~rng ~profiles:2 ~base:g ~traffic:fig1_traffic () in
  let verdict = Faithfulness.certify evidence in
  if not verdict.Faithfulness.faithful then
    Alcotest.failf "not faithful: %s" (String.concat "; " verdict.Faithfulness.failures)

let test_analysis_unchecked_not_faithful () =
  let g, _ = Lazy.force fig1 in
  let rng = Rng.create 704 in
  let report =
    Analysis.ex_post_nash_report ~params:unchecked ~rng ~profiles:2 ~base:g
      ~traffic:fig1_traffic ()
  in
  check Alcotest.bool "unchecked spec is not an equilibrium" false
    (Equilibrium.holds report)

(* --- Extensions: collusion, omission faults, ablations, asynchrony --- *)

let test_lying_checker_alone_harmless () =
  (* A lying checker with a faithful principal echoes a truthful digest:
     nothing changes, nothing is (or should be) detected. *)
  let g, _ = Lazy.force fig1 in
  let r = run_with_deviant g fig1_traffic 5 Adversary.Lying_checker in
  check Alcotest.bool "completed" true r.Runner.completed;
  check Alcotest.int "no detections" 0 (List.length r.Runner.detections)

let test_partial_collusion_still_caught () =
  (* C deviates; one of its two checkers (D) colludes; the other (Z) is
     honest and still catches it — "there is always at least one checker". *)
  let g, _ = Lazy.force fig1 in
  let c = 2 and d = 3 in
  let deviations = Array.make 6 Adversary.Faithful in
  deviations.(c) <- Adversary.Miscompute_routing 2.;
  deviations.(d) <- Adversary.Collude_with c;
  let r = Runner.run ~graph:g ~traffic:fig1_traffic ~deviations () in
  check Alcotest.bool "still caught" false r.Runner.completed;
  check Alcotest.bool "BANK1 fired" true
    (List.exists (fun det -> det.Bank.rule = "BANK1" && det.Bank.culprit = Some c)
       r.Runner.detections)

let test_full_neighborhood_collusion_escapes () =
  (* Both of C's checkers collude: the deviation certifies — the exact
     boundary of the paper's no-collusion assumption. *)
  let g, _ = Lazy.force fig1 in
  let c = 2 in
  let deviations = Array.make 6 Adversary.Faithful in
  deviations.(c) <- Adversary.Miscompute_routing 2.;
  List.iter
    (fun nb -> deviations.(nb) <- Adversary.Collude_with c)
    (Graph.neighbors g c);
  let r = Runner.run ~graph:g ~traffic:fig1_traffic ~deviations () in
  check Alcotest.bool "escapes" true r.Runner.completed

let test_detectable_in_partial_coalition () =
  (* Topology-aware prediction matching test_partial_collusion_still_caught:
     one honest checker remains, so C is still detectable — and the
     colluder shares its principal's verdict. *)
  let g, _ = Lazy.force fig1 in
  let c = 2 in
  let profile = Array.make 6 Adversary.Faithful in
  profile.(c) <- Adversary.Miscompute_routing 2.;
  profile.(3) <- Adversary.Collude_with c;
  let neighbors = Graph.neighbors g in
  check Alcotest.bool "principal detectable" true
    (Adversary.detectable_in ~neighbors ~profile c);
  check Alcotest.bool "colluder shares verdict" true
    (Adversary.detectable_in ~neighbors ~profile 3)

let test_detectable_in_covering_coalition () =
  (* Every neighbor of C colludes: no honest checker remains, so the
     checker-mediated deviation is predicted to escape — matching
     test_full_neighborhood_collusion_escapes. A deviation the bank
     catches globally (DATA1) stays detectable regardless. *)
  let g, _ = Lazy.force fig1 in
  let c = 2 in
  let profile = Array.make 6 Adversary.Faithful in
  profile.(c) <- Adversary.Miscompute_routing 2.;
  List.iter (fun nb -> profile.(nb) <- Adversary.Collude_with c) (Graph.neighbors g c);
  let neighbors = Graph.neighbors g in
  check Alcotest.bool "covered principal escapes" false
    (Adversary.detectable_in ~neighbors ~profile c);
  check Alcotest.bool "colluders escape with it" false
    (Adversary.detectable_in ~neighbors ~profile (List.hd (Graph.neighbors g c)));
  profile.(c) <- Adversary.Inconsistent_cost (1., 8.);
  check Alcotest.bool "DATA1-caught deviation immune to coalition" true
    (Adversary.detectable_in ~neighbors ~profile c)

let test_channel_loss_false_positives () =
  (* Heavy omission faults against all-faithful nodes: the §5 caveat —
     the machinery falsely detects and the mechanism stalls. *)
  let g, _ = Lazy.force fig1 in
  let params = { Runner.default_params with Runner.channel_loss = Some (0.25, 3) } in
  let r = Runner.run_faithful ~params ~graph:g ~traffic:fig1_traffic () in
  check Alcotest.bool "stalls under loss" false r.Runner.completed

let test_zero_channel_loss_is_clean () =
  let g, _ = Lazy.force fig1 in
  let params = { Runner.default_params with Runner.channel_loss = Some (0., 3) } in
  let r = Runner.run_faithful ~params ~graph:g ~traffic:fig1_traffic () in
  check Alcotest.bool "completed" true r.Runner.completed;
  check Alcotest.int "no detections" 0 (List.length r.Runner.detections)

let test_no_copies_mode_cheaper () =
  (* The plain-FPSS baseline (no checker copies) moves strictly fewer
     bytes than the faithful construction. *)
  let g, _ = Lazy.force fig1 in
  let plain_params =
    { Runner.default_params with Runner.checking = false; copies = false }
  in
  let plain = Runner.run_faithful ~params:plain_params ~graph:g ~traffic:fig1_traffic () in
  let faithful = Lazy.force faithful_run in
  check Alcotest.bool "plain completes" true plain.Runner.completed;
  check Alcotest.bool "cheaper" true
    (plain.Runner.construction_bytes < faithful.Runner.construction_bytes);
  (* and it still converges to the right tables *)
  match plain.Runner.tables with
  | Some t ->
      let c = Pricing.compute g in
      check Alcotest.bool "tables right" true
        (Tables.routing_equal t c && Tables.prices_equal t c)
  | None -> Alcotest.fail "no tables"

let test_deferred_certification_catches_late () =
  let g, _ = Lazy.force fig1 in
  let params = { Runner.default_params with Runner.deferred_certification = true } in
  let deviations = Array.make 6 Adversary.Faithful in
  deviations.(2) <- Adversary.Inconsistent_cost (1., 8.);
  let r = Runner.run ~params ~graph:g ~traffic:fig1_traffic ~deviations () in
  check Alcotest.bool "still caught" false r.Runner.completed;
  check (Alcotest.option Alcotest.string) "at the final certificate"
    (Some "deferred-certification") r.Runner.stuck_phase

let test_deferred_certification_faithful_clean () =
  let g, _ = Lazy.force fig1 in
  let params = { Runner.default_params with Runner.deferred_certification = true } in
  let r = Runner.run_faithful ~params ~graph:g ~traffic:fig1_traffic () in
  check Alcotest.bool "completed" true r.Runner.completed

let test_heterogeneous_latency_agrees () =
  let g = Lazy.force ring5 in
  let traffic = Traffic.uniform ~n:5 ~rate:1. in
  let c = Pricing.compute g in
  List.iter
    (fun seed ->
      let params = { Runner.default_params with Runner.latency_seed = Some seed } in
      let r = Runner.run_faithful ~params ~graph:g ~traffic () in
      check Alcotest.bool "completed" true r.Runner.completed;
      match r.Runner.tables with
      | Some t ->
          check Alcotest.bool "tables match" true
            (Tables.routing_equal t c && Tables.prices_equal t c)
      | None -> Alcotest.fail "no tables")
    [ 1; 2; 3 ]

let test_heterogeneous_latency_still_detects () =
  let g = Lazy.force ring5 in
  let traffic = Traffic.uniform ~n:5 ~rate:1. in
  let params = { Runner.default_params with Runner.latency_seed = Some 9 } in
  let deviations = Array.make 5 Adversary.Faithful in
  deviations.(2) <- Adversary.Miscompute_pricing 2.;
  let r = Runner.run ~params ~graph:g ~traffic ~deviations () in
  check Alcotest.bool "caught" false r.Runner.completed

(* --- Replication baseline --- *)

let test_replication_correct_and_complete () =
  let g, _ = Lazy.force fig1 in
  let r = Damd_faithful.Replication.run g in
  check Alcotest.bool "tables match" true r.Damd_faithful.Replication.tables_match;
  check Alcotest.bool "mirrors complete" true r.Damd_faithful.Replication.mirrors_complete

let test_replication_costs_more_than_faithful () =
  let rng = Rng.create 801 in
  let g = Gen.chordal_ring rng ~n:10 ~chords:3 (Gen.Uniform_int (1, 8)) in
  let traffic = Traffic.uniform ~n:10 ~rate:1. in
  let faithful = Runner.run_faithful ~graph:g ~traffic () in
  let repl = Damd_faithful.Replication.run g in
  check Alcotest.bool "replication heavier" true
    (repl.Damd_faithful.Replication.bytes > faithful.Runner.construction_bytes)

(* --- Broader integration properties --- *)

let test_faithful_under_hotspot_traffic () =
  (* The faithfulness machinery is traffic-model agnostic: a hotspot
     matrix changes payments, not detection. *)
  let rng = Rng.create 802 in
  let g = Gen.chordal_ring rng ~n:8 ~chords:2 (Gen.Uniform_int (1, 8)) in
  let traffic = Traffic.hotspot rng ~n:8 ~hotspots:2 ~rate:2. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  check Alcotest.bool "completed" true r.Runner.completed;
  let deviations = Array.make 8 Adversary.Faithful in
  deviations.(1) <- Adversary.Underreport_payments 0.1;
  let dr = Runner.run ~graph:g ~traffic ~deviations () in
  check Alcotest.bool "fraud caught under hotspot traffic" true
    (List.exists (fun det -> det.Bank.rule = "EXEC") dr.Runner.detections)

let test_zero_traffic_execution_trivial () =
  let g, _ = Lazy.force fig1 in
  let traffic = Array.make_matrix 6 6 0. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  check Alcotest.bool "completed" true r.Runner.completed;
  check Alcotest.int "no packets" 0 r.Runner.execution_messages;
  Array.iter (fun u -> checkf "all utilities zero" 0. u) r.Runner.utilities

let test_triangle_minimal_biconnected () =
  (* The smallest graph with a transit node: a triangle. *)
  let g = Graph.create ~n:3 ~costs:[| 2.; 3.; 4. |] ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  let traffic = Traffic.uniform ~n:3 ~rate:1. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  check Alcotest.bool "completed" true r.Runner.completed;
  match r.Runner.tables with
  | Some t ->
      let c = Pricing.compute g in
      check Alcotest.bool "tables" true
        (Tables.routing_equal t c && Tables.prices_equal t c)
  | None -> Alcotest.fail "no tables"

let test_zero_cost_nodes () =
  (* Free-transit nodes exercise the zero-cost corner of the pricing
     recurrence. *)
  let g = Gen.ring ~n:6 ~costs:[| 0.; 1.; 0.; 2.; 0.; 3. |] in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  check Alcotest.bool "completed" true r.Runner.completed;
  match r.Runner.tables with
  | Some t ->
      let c = Pricing.compute g in
      check Alcotest.bool "tables" true
        (Tables.routing_equal t c && Tables.prices_equal t c)
  | None -> Alcotest.fail "no tables"

let prop_faithful_random_graphs =
  QCheck.Test.make ~name:"faithful run certifies and matches on random graphs" ~count:50
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 900) in
      let n = 5 + (seed mod 6) in
      let p = 0.3 +. (p *. 0.4) in
      let g = Gen.erdos_renyi rng ~n ~p (Gen.Uniform_int (1, 9)) in
      let traffic = Traffic.uniform ~n ~rate:1. in
      let r = Runner.run_faithful ~graph:g ~traffic () in
      r.Runner.completed
      &&
      match r.Runner.tables with
      | Some t ->
          let c = Pricing.compute g in
          Tables.routing_equal t c && Tables.prices_equal t c
      | None -> false)

let prop_detection_random_graphs =
  QCheck.Test.make ~name:"random deviant on random graph: caught or no effect" ~count:10
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, who, which) ->
      let rng = Rng.create (seed + 950) in
      let n = 6 in
      let g = Gen.erdos_renyi rng ~n ~p:0.5 (Gen.Uniform_int (1, 9)) in
      let traffic = Traffic.uniform ~n ~rate:1. in
      let construction_lib =
        List.filter
          (fun d -> Adversary.detectable d && Adversary.is_construction d)
          Adversary.library
      in
      let d = List.nth construction_lib (which mod List.length construction_lib) in
      let who = who mod n in
      let deviations = Array.make n Adversary.Faithful in
      deviations.(who) <- d;
      let r = Runner.run ~graph:g ~traffic ~deviations () in
      if not r.Runner.completed then true
      else
        let faithful = Runner.run_faithful ~graph:g ~traffic () in
        match (r.Runner.tables, faithful.Runner.tables) with
        | Some a, Some b -> Tables.routing_equal a b && Tables.prices_equal a b
        | _ -> false)

(* --- Penalty arithmetic, exactly --- *)

let test_underreport_penalty_is_delta_plus_epsilon () =
  (* The fine is "epsilon-above the attempted deviation": reporting half
     the owed total costs exactly (0.5 * owed) + epsilon relative to
     faithful play, everything else unchanged. *)
  let g, _ = Lazy.force fig1 in
  let faithful = Lazy.force faithful_run in
  let tables = Option.get faithful.Runner.tables in
  let who = 4 (* X *) in
  let owed = Tables.outlay tables fig1_traffic who in
  let gain =
    Runner.utility_gain ~graph:g ~traffic:fig1_traffic ~node:who
      ~deviation:(Adversary.Underreport_payments 0.5) ()
  in
  checkf "gain = -(delta + epsilon)" (-.((0.5 *. owed) +. 1.)) gain

let test_misreport_gain_matches_centralized_game () =
  (* The distributed protocol's utility change under a consistent cost
     misreport equals the centralized game's prediction plus the delivery
     value (which is constant) — i.e. the two layers agree on the
     economics. *)
  let g, _ = Lazy.force fig1 in
  let who = 2 (* C *) and lie = 5. in
  let true_costs = Graph.costs g in
  let declared = Array.copy true_costs in
  declared.(who) <- lie;
  let centralized_truth =
    (Game.utilities Game.Vcg ~base:g ~true_costs ~declared:true_costs
       ~traffic:fig1_traffic).(who)
  in
  let centralized_lie =
    (Game.utilities Game.Vcg ~base:g ~true_costs ~declared ~traffic:fig1_traffic).(who)
  in
  let distributed_gain =
    Runner.utility_gain ~graph:g ~traffic:fig1_traffic ~node:who
      ~deviation:(Adversary.Misreport_cost lie) ()
  in
  checkf "layers agree" (centralized_lie -. centralized_truth) distributed_gain

(* --- Bank committee (footnote 6's open problem, sketched) --- *)

module Committee = Damd_faithful.Committee

let some_evidence =
  [ { Bank.rule = "BANK1"; culprit = Some 0; detail = "test evidence" } ]

let test_committee_honest_unanimity () =
  let c = [ Committee.Honest_replica; Committee.Honest_replica; Committee.Honest_replica ] in
  check Alcotest.bool "green on no evidence" true
    (Committee.decide c ~evidence:[] = Committee.Green_light);
  match Committee.decide c ~evidence:some_evidence with
  | Committee.Restart ds -> check Alcotest.int "carries evidence" 1 (List.length ds)
  | Committee.Green_light -> Alcotest.fail "should restart"

let test_committee_minority_liar_cannot_flip () =
  (* 1 corrupt of 3: neither direction flips. *)
  let approve = [ Committee.Honest_replica; Committee.Honest_replica; Committee.Always_approve ] in
  check Alcotest.bool "cannot suppress restart" true
    (Committee.decide approve ~evidence:some_evidence <> Committee.Green_light);
  let restart = [ Committee.Honest_replica; Committee.Honest_replica; Committee.Always_restart ] in
  check Alcotest.bool "cannot force restart" true
    (Committee.decide restart ~evidence:[] = Committee.Green_light)

let test_committee_majority_liars_win () =
  let approve =
    [ Committee.Honest_replica; Committee.Always_approve; Committee.Always_approve ]
  in
  check Alcotest.bool "suppresses restart" true
    (Committee.decide approve ~evidence:some_evidence = Committee.Green_light);
  let restart =
    [ Committee.Honest_replica; Committee.Always_restart; Committee.Always_restart ]
  in
  match Committee.decide restart ~evidence:[] with
  | Committee.Restart [ d ] -> check Alcotest.string "synthesized" "COMMITTEE" d.Bank.rule
  | _ -> Alcotest.fail "expected forced restart"

let test_committee_tolerance_bound () =
  check Alcotest.bool "3 tolerates 1" true (Committee.tolerates ~replicas:3 ~corrupt:1);
  check Alcotest.bool "3 not 2" false (Committee.tolerates ~replicas:3 ~corrupt:2);
  check Alcotest.bool "5 tolerates 2" true (Committee.tolerates ~replicas:5 ~corrupt:2);
  check Alcotest.bool "1 tolerates 0" true (Committee.tolerates ~replicas:1 ~corrupt:0)

let test_committee_ties_fail_safe () =
  let c = [ Committee.Honest_replica; Committee.Always_restart ] in
  check Alcotest.bool "even tie restarts" true
    (Committee.decide c ~evidence:[] <> Committee.Green_light)

let test_committee_checkpoint_end_to_end () =
  (* Drive a real construction to quiescence, then have a committee with a
     minority liar vote on the real checkpoints. *)
  let g, _ = Lazy.force fig1 in
  let r = Runner.run_faithful ~graph:g ~traffic:fig1_traffic () in
  check Alcotest.bool "baseline ok" true r.Runner.completed;
  (* rebuild converged nodes directly for the committee to inspect *)
  let n = 6 in
  let sets = Array.init n (Graph.neighbors g) in
  let nodes =
    Array.init n (fun id ->
        Node.create ~id ~n ~neighbor_sets:sets ~true_cost:(Graph.cost g id)
          ~deviation:Adversary.Faithful ())
  in
  let inbox = Queue.create () in
  let send_of i ~dst msg = Queue.push (i, dst, msg) inbox in
  let drain handler =
    while not (Queue.is_empty inbox) do
      let src, dst, msg = Queue.pop inbox in
      handler dst ~sender:src msg
    done
  in
  Array.iteri (fun i node -> Node.announce_cost node (send_of i)) nodes;
  drain (fun dst ~sender msg ->
      match msg with
      | Protocol.Update u -> Node.on_cost_msg nodes.(dst) (send_of dst) ~sender u
      | _ -> ());
  Array.iter (fun node -> ignore (Node.finalize_costs node)) nodes;
  Array.iteri (fun i node -> Node.start_routing node (send_of i)) nodes;
  drain (fun dst ~sender msg -> Node.on_routing_msg nodes.(dst) (send_of dst) ~sender msg);
  let committee =
    [ Committee.Honest_replica; Committee.Honest_replica; Committee.Always_restart ]
  in
  check Alcotest.bool "routing green-lit despite liar" true
    (Committee.checkpoint committee ~stage:`Routing nodes = Committee.Green_light)

(* --- FPSS partitioning (footnote 8 of the paper) --- *)

let test_partitioning_own_pricing_cannot_raise_own_income () =
  (* "Each of these nodes ignores (by the pricing update rules) the node
     that caused the update": the pricing recurrence never consults node
     k's own announcements when deriving payments *to* k, so even with
     checking disabled, inflating one's own announced prices does not
     raise one's own income. *)
  let rng = Rng.create 810 in
  let unchecked = { Runner.default_params with Runner.checking = false } in
  for _ = 1 to 3 do
    let g = Gen.chordal_ring rng ~n:8 ~chords:2 (Gen.Uniform_int (1, 8)) in
    let traffic = Traffic.uniform ~n:8 ~rate:1. in
    let faithful = Runner.run_faithful ~params:unchecked ~graph:g ~traffic () in
    for k = 0 to 7 do
      let deviations = Array.make 8 Adversary.Faithful in
      deviations.(k) <- Adversary.Miscompute_pricing 5.;
      let r = Runner.run ~params:unchecked ~graph:g ~traffic ~deviations () in
      check Alcotest.bool "no self-enrichment" true
        (r.Runner.utilities.(k) <= faithful.Runner.utilities.(k) +. 1e-6)
    done
  done

let test_combined_attacks_caught () =
  let g, _ = Lazy.force fig1 in
  List.iter
    (fun d ->
      let r = run_with_deviant g fig1_traffic 3 d in
      check Alcotest.bool (Adversary.name d ^ " blocked") false r.Runner.completed)
    [ Adversary.Combined_routing_attack 2.; Adversary.Combined_pricing_attack 2. ]

let test_stress_larger_network () =
  (* A single heavier end-to-end check: n=24, heavier degree. *)
  let rng = Rng.create 811 in
  let g = Gen.erdos_renyi rng ~n:24 ~p:0.2 (Gen.Uniform_int (1, 10)) in
  let traffic = Traffic.uniform ~n:24 ~rate:1. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  check Alcotest.bool "completed" true r.Runner.completed;
  match r.Runner.tables with
  | Some t ->
      let c = Pricing.compute g in
      check Alcotest.bool "exact tables at n=24" true
        (Tables.routing_equal t c && Tables.prices_equal t c)
  | None -> Alcotest.fail "no tables"

(* --- Audit API --- *)

module Audit = Damd_faithful.Audit

let test_audit_one_caught () =
  let g, _ = Lazy.force fig1 in
  let a =
    Audit.one ~graph:g ~traffic:fig1_traffic ~node:2
      ~deviation:(Adversary.Miscompute_routing 2.) ()
  in
  (match a.Audit.outcome with
  | Audit.Caught rules -> check Alcotest.bool "BANK1" true (List.mem "BANK1" rules)
  | _ -> Alcotest.fail "expected caught");
  check Alcotest.bool "negative gain" true (a.Audit.gain < 0.);
  check Alcotest.bool "not completed" false a.Audit.completed

let test_audit_one_no_effect () =
  let g, _ = Lazy.force fig1 in
  let a =
    Audit.one ~graph:g ~traffic:fig1_traffic ~node:2
      ~deviation:(Adversary.Misreport_cost 1.) ()
  in
  (* declaring the true cost is literally the faithful behaviour *)
  check Alcotest.string "no effect" "no effect" (Audit.outcome_to_string a.Audit.outcome);
  Alcotest.check (Alcotest.float 1e-9) "zero gain" 0. a.Audit.gain

let test_audit_matrix_clean_on_fig1 () =
  let g, _ = Lazy.force fig1 in
  let rows =
    Audit.detection_matrix ~targets:[ (g, fig1_traffic, [ 2 ]) ] ()
  in
  check Alcotest.bool "clean" true (Audit.clean rows);
  check Alcotest.int "all detectable deviations audited"
    (List.length (List.filter Adversary.detectable Adversary.library))
    (List.length rows);
  List.iter
    (fun (r : Audit.matrix_row) ->
      check Alcotest.int (r.Audit.name ^ " runs") 1 r.Audit.runs;
      check Alcotest.bool (r.Audit.name ^ " gain <= 0") true (r.Audit.max_gain <= 1e-9))
    rows

let test_audit_detects_escape_under_collusion () =
  (* With a full-neighborhood coalition the matrix must report the escape
     honestly — exercised via max_gain over a colluding configuration is
     not expressible here (matrix audits single deviants), so check that
     the unchecked configuration reports Escaped rows instead. *)
  let g, _ = Lazy.force fig1 in
  let unchecked = { Runner.default_params with Runner.checking = false } in
  let rows =
    Audit.detection_matrix ~params:unchecked
      ~deviations:[ Adversary.Miscompute_routing (-2.) ]
      ~targets:[ (g, fig1_traffic, [ 2; 3 ]) ]
      ()
  in
  check Alcotest.bool "escapes visible when unchecked" false (Audit.clean rows)

let test_audit_max_gain_nonpositive_checked () =
  let g = Lazy.force ring5 in
  let traffic = Traffic.uniform ~n:5 ~rate:1. in
  let gain, _ = Audit.max_gain ~graph:g ~traffic () in
  check Alcotest.bool "faithful" true (gain <= 1e-9)

let test_audit_max_gain_positive_unchecked () =
  let g, _ = Lazy.force fig1 in
  let unchecked = { Runner.default_params with Runner.checking = false } in
  let gain, name = Audit.max_gain ~params:unchecked ~graph:g ~traffic:fig1_traffic () in
  check Alcotest.bool "profit exists" true (gain > 0.);
  check Alcotest.bool "named" true (name <> "-")

(* --- The second instantiation: faithful distributed leader election --- *)

module Election = Damd_faithful.Election
module Leader = Damd_mech.Leader_election

let election_fixture =
  lazy
    (let rng = Rng.create 820 in
     let g = Gen.chordal_ring rng ~n:8 ~chords:2 (Gen.Uniform_int (1, 5)) in
     let profile = Leader.sample_profile ~n:8 rng in
     (g, profile))

let test_election_honest_certifies () =
  let g, profile = Lazy.force election_fixture in
  let r = Election.run ~graph:g ~profile ~deviations:(Array.make 8 Election.Honest) () in
  check Alcotest.bool "completed" true r.Election.completed;
  check Alcotest.int "no detections" 0 (List.length r.Election.detections);
  (* the distributed protocol elects the same node as the centralized
     second-score mechanism *)
  let m = Leader.second_score ~n:8 ~benefit:2. in
  let o, _ = m.Damd_mech.Mechanism.run profile in
  check (Alcotest.option Alcotest.int) "same winner" (Some o.Leader.leader)
    r.Election.leader

let test_election_winner_utility_matches_centralized () =
  let g, profile = Lazy.force election_fixture in
  let r = Election.run ~graph:g ~profile ~deviations:(Array.make 8 Election.Honest) () in
  let m = Leader.second_score ~n:8 ~benefit:2. in
  let leader = Option.get r.Election.leader in
  checkf "utility agrees"
    (Damd_mech.Mechanism.utility m leader profile.(leader) profile)
    r.Election.utilities.(leader)

let test_election_no_profitable_deviation () =
  let g, profile = Lazy.force election_fixture in
  List.iter
    (fun d ->
      for node = 0 to 7 do
        let gain = Election.utility_gain ~graph:g ~profile ~node ~deviation:d () in
        if gain > 1e-9 then
          Alcotest.failf "node %d profits %g from %s" node gain
            (Election.deviation_name d)
      done)
    Election.deviation_library

let test_election_inconsistent_bid_caught () =
  let g, profile = Lazy.force election_fixture in
  let deviations = Array.make 8 Election.Honest in
  deviations.(1) <- Election.Inconsistent_bid 3.;
  let r = Election.run ~graph:g ~profile ~deviations () in
  check Alcotest.bool "stuck" false r.Election.completed;
  check Alcotest.bool "flagged" true (r.Election.detections <> [])

let test_election_miscompute_caught () =
  let g, profile = Lazy.force election_fixture in
  (* a node that is not the honest winner claims the crown *)
  let honest = Election.run ~graph:g ~profile ~deviations:(Array.make 8 Election.Honest) () in
  let loser = if honest.Election.leader = Some 0 then 1 else 0 in
  let deviations = Array.make 8 Election.Honest in
  deviations.(loser) <- Election.Miscompute_winner;
  let r = Election.run ~graph:g ~profile ~deviations () in
  check Alcotest.bool "stuck" false r.Election.completed

let test_election_unchecked_self_nomination_profits () =
  let g, profile = Lazy.force election_fixture in
  let unchecked = { Election.default_params with Election.checking = false } in
  let best =
    List.fold_left
      (fun acc node ->
        Float.max acc
          (Election.utility_gain ~params:unchecked ~graph:g ~profile ~node
             ~deviation:Election.Miscompute_winner ()))
      neg_infinity
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check Alcotest.bool "self-nomination pays unchecked" true (best > 0.)

let test_election_refuse_to_serve_fined () =
  let g, profile = Lazy.force election_fixture in
  let honest = Election.run ~graph:g ~profile ~deviations:(Array.make 8 Election.Honest) () in
  let leader = Option.get honest.Election.leader in
  let deviations = Array.make 8 Election.Honest in
  deviations.(leader) <- Election.Refuse_to_serve;
  let r = Election.run ~graph:g ~profile ~deviations () in
  check Alcotest.bool "completed" true r.Election.completed;
  check Alcotest.bool "fined" true (r.Election.utilities.(leader) < 0.);
  check Alcotest.bool "logged" true (r.Election.detections <> [])

let test_election_classification_total () =
  List.iter
    (fun d ->
      check Alcotest.bool
        (Election.deviation_name d)
        true
        (Election.classify d <> []))
    Election.deviation_library

(* --- Spec catalogue --- *)

module Spec = Damd_faithful.Spec

let test_spec_covers_all_classes () =
  check Alcotest.int "three classes" 3 (List.length (Spec.classes_covered ()))

let test_spec_covers_all_phases () =
  let phases = List.sort_uniq compare (List.map (fun e -> e.Spec.phase) Spec.catalogue) in
  check Alcotest.int "four phases" 4 (List.length phases)

let test_spec_deviations_exist_in_library () =
  (* Every deviation label referenced by the catalogue corresponds to a
     constructor of the adversary library. *)
  List.iter
    (fun e ->
      List.iter
        (fun d ->
          check Alcotest.bool
            (Spec.Dev.to_string d ^ " exists")
            true
            (List.mem d Adversary.all_labels))
        e.Spec.deviations)
    Spec.catalogue

let test_spec_every_library_deviation_targets_an_action () =
  (* Conversely, every library deviation is accounted for in the spec. *)
  let targeted =
    List.concat_map (fun e -> e.Spec.deviations) Spec.catalogue
  in
  List.iter
    (fun d ->
      check Alcotest.bool
        (Adversary.name d ^ " targeted")
        true
        (List.mem (Adversary.label d) targeted))
    Adversary.library

let test_spec_rules_cover_all_rule_tags () =
  (* The catalogue exercises the full enforcement-rule vocabulary. *)
  let used =
    List.sort_uniq compare (List.concat_map (fun e -> e.Spec.rules) Spec.catalogue)
  in
  check Alcotest.int "all rule tags used"
    (List.length Damd_speccheck.Rule.all)
    (List.length used)

(* --- Adversary bookkeeping --- *)

let test_adversary_names_unique () =
  let names = List.map Adversary.name Adversary.library in
  check Alcotest.int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_adversary_classes_nonempty () =
  List.iter
    (fun d ->
      check Alcotest.bool (Adversary.name d) true (Adversary.classify d <> []))
    Adversary.library;
  check Alcotest.bool "faithful has no classes" true
    (Adversary.classify Adversary.Faithful = [])

let test_adversary_phases_partition () =
  List.iter
    (fun d ->
      check Alcotest.bool
        (Adversary.name d ^ " is construction xor execution")
        true
        (Adversary.is_construction d <> Adversary.is_execution d
        || d = Adversary.Misreport_cost 5.))
    Adversary.library

(* --- Scale: faithful checking over sparse state --- *)

module Scale = Damd_faithful.Scale
module Sparse = Damd_fpss.Sparse

let test_scale_honest_completes () =
  (* A full honest pass on an n=256 AS-like power-law topology with a
     restricted destination set: clean checkpoints, every demand routed,
     and the settlement conserves value (payments are transfers, so the
     welfare identity sum(u) = value*delivered - true transit cost must
     hold exactly). *)
  let rng = Rng.create 77 in
  let g, _ = Gen.as_like rng ~n:256 ~m:2 (Gen.Uniform_int (1, 10)) in
  let dests = [| 0; 1; 2; 3; 50; 100; 150; 250 |] in
  let report, _sp = Scale.run ~dests g in
  check Alcotest.bool "completed" true report.Scale.completed;
  check Alcotest.int "no detections" 0 (List.length report.Scale.detections);
  check Alcotest.int "all demands delivered" (8 * 255) report.Scale.delivered;
  check Alcotest.bool "construction messages counted" true
    (report.Scale.construction_messages > 0);
  check Alcotest.bool "checkpoint traffic is per-edge" true
    (report.Scale.checkpoint_messages = 4 * Graph.num_edges g);
  let sum_u = Array.fold_left ( +. ) 0. report.Scale.utilities in
  let expected =
    (100. *. float_of_int report.Scale.delivered) -. report.Scale.total_true_cost
  in
  check (Alcotest.float 1e-6) "welfare identity" expected sum_u

let test_scale_matches_dense_tables () =
  (* With the full destination set, the announced tables the scale layer
     certifies are exactly the centralized FPSS fixpoint, and the money
     that moves matches the dense price tables. *)
  let g, _ = Lazy.force fig1 in
  let report, sp = Scale.run g in
  check Alcotest.bool "completed" true report.Scale.completed;
  let t = Sparse.to_tables sp in
  let c = Pricing.compute g in
  check Alcotest.bool "routing = centralized" true (Tables.routing_equal t c);
  check Alcotest.bool "prices = centralized" true (Tables.prices_equal t c);
  let dense_payments = ref 0. in
  for src = 0 to 5 do
    for dst = 0 to 5 do
      if src <> dst then
        List.iter
          (fun (_, p) -> dense_payments := !dense_payments +. p)
          (Tables.packet_payments c ~src ~dst)
    done
  done;
  check (Alcotest.float 1e-9) "payments match dense tables" !dense_payments
    report.Scale.total_payments

let test_scale_routing_distorter_caught () =
  let rng = Rng.create 78 in
  let g = Gen.chordal_ring rng ~n:64 ~chords:16 (Gen.Uniform_int (1, 10)) in
  let deviations i = if i = 5 then Scale.Distort_routing 0.5 else Scale.Honest in
  let report, _ = Scale.run ~dests:[| 0; 16; 32; 48 |] ~deviations g in
  check Alcotest.bool "not completed" false report.Scale.completed;
  (match report.Scale.detections with
  | [ d ] ->
      check Alcotest.int "correct culprit" 5 d.Scale.culprit;
      check Alcotest.bool "routing phase" true (d.Scale.phase = `Routing);
      check (Alcotest.float 1e-9) "residual = distortion" 0.5 d.Scale.residual
  | ds ->
      Alcotest.failf "expected exactly one detection, got %d" (List.length ds))

let test_scale_pricing_distorter_caught () =
  (* Node C (id 2) carries Fig-1 transit traffic, so padded prices are a
     visible lie; routing stays honest and clean. *)
  let g, _ = Lazy.force fig1 in
  let deviations i = if i = 2 then Scale.Distort_pricing 0.75 else Scale.Honest in
  let report, _ = Scale.run ~deviations g in
  check Alcotest.bool "not completed" false report.Scale.completed;
  (match report.Scale.detections with
  | [ d ] ->
      check Alcotest.int "correct culprit" 2 d.Scale.culprit;
      check Alcotest.bool "pricing phase" true (d.Scale.phase = `Pricing);
      check (Alcotest.float 1e-9) "residual = distortion" 0.75 d.Scale.residual
  | ds ->
      Alcotest.failf "expected exactly one detection, got %d" (List.length ds))

let test_scale_halts_on_detection () =
  (* Detection means the bank refuses to certify: no traffic clears and
     no money moves. *)
  let g, _ = Lazy.force fig1 in
  let deviations i = if i = 3 then Scale.Distort_routing 1.0 else Scale.Honest in
  let report, _ = Scale.run ~deviations g in
  check Alcotest.bool "not completed" false report.Scale.completed;
  check Alcotest.int "nothing delivered" 0 report.Scale.delivered;
  checkf "no payments" 0. report.Scale.total_payments;
  Array.iter (fun u -> checkf "utilities untouched" 0. u) report.Scale.utilities

(* --- Fault injection through the runner: blame correctness --- *)

module Fault = Damd_sim.Fault

let fault_params spec =
  { Runner.default_params with Runner.fault = Some spec; max_restarts = 4 }

let no_honest_accusation r =
  List.for_all (fun det -> det.Bank.culprit = None) r.Runner.detections

let test_fault_loss_never_accuses_honest () =
  (* Pure link loss against an all-honest run: progress may degrade
     (restarts, a stuck phase) but the FT evidence split must never
     produce a culprit — loss is an omission, not a contradiction. *)
  let g, _ = Lazy.force fig1 in
  let deviations = Array.make 6 Adversary.Faithful in
  List.iter
    (fun seed ->
      let spec =
        {
          Fault.seed;
          link = Some { Fault.loss_p = 0.05; reorder_p = 0.2; reorder_delay = 1.5 };
          partition = None;
          crash = None;
        }
      in
      let r =
        Runner.run ~params:(fault_params spec) ~graph:g ~traffic:fig1_traffic
          ~deviations ()
      in
      check Alcotest.bool "no honest node accused" true (no_honest_accusation r);
      if r.Runner.completed then
        match (r.Runner.tables, (Lazy.force faithful_run).Runner.tables) with
        | Some t, Some t' ->
            check Alcotest.bool "certified tables are correct" true
              (Tables.routing_equal t t' && Tables.prices_equal t t')
        | _ -> Alcotest.fail "completed run without tables")
    [ 11; 23; 37; 58 ]

let test_fault_crash_handoff_recovers () =
  (* Fail-stop with recovery inside the routing phase: the neighbor
     handoff plus bank-ordered restarts must carry the run to a clean
     certification with no one blamed. *)
  let g, _ = Lazy.force fig1 in
  let deviations = Array.make 6 Adversary.Faithful in
  let spec =
    {
      Fault.seed = 7;
      link = None;
      partition = None;
      crash =
        Some { Fault.node = 3; crash_phase = `Routing; at = 1.0; recovers_at = 2.5 };
    }
  in
  let r =
    Runner.run ~params:(fault_params spec) ~graph:g ~traffic:fig1_traffic
      ~deviations ()
  in
  check Alcotest.bool "no honest node accused" true (no_honest_accusation r);
  check Alcotest.bool "run completes after recovery" true r.Runner.completed;
  match (r.Runner.tables, (Lazy.force faithful_run).Runner.tables) with
  | Some t, Some t' ->
      check Alcotest.bool "tables unaffected by the crash" true
        (Tables.routing_equal t t' && Tables.prices_equal t t')
  | _ -> Alcotest.fail "completed run without tables"

let test_fault_partition_heals_and_completes () =
  let g, _ = Lazy.force fig1 in
  let deviations = Array.make 6 Adversary.Faithful in
  let spec =
    {
      Fault.seed = 9;
      link = None;
      partition =
        Some
          { Fault.island = [ 0; 1 ]; part_phase = `Costs; at = 0.5; heals_at = 3.0 };
      crash = None;
    }
  in
  let r =
    Runner.run ~params:(fault_params spec) ~graph:g ~traffic:fig1_traffic
      ~deviations ()
  in
  check Alcotest.bool "no honest node accused" true (no_honest_accusation r)

let test_plan_of_seed_deterministic () =
  List.iter
    (fun s ->
      check Alcotest.bool "pure in the seed" true
        (Adversary.plan_of_seed s = Adversary.plan_of_seed s))
    [ 0; 1; 42; 9001 ];
  check Alcotest.bool "seeds differentiate plans" true
    (List.exists
       (fun s -> Adversary.plan_of_seed s <> Adversary.plan_of_seed 0)
       [ 1; 2; 3; 4; 5 ])

let test_byzantine_deviant_caught () =
  (* A Byzantine node never slides damage past certification: either the
     bank refuses to certify / flags it, or the plan was behaviorally
     inert on this topology and the certified tables are still the
     honest ones (e.g. a cost pair whose two values land on same-parity
     neighbors, or corrupted forwards that lose the first-arrival race
     in the flood). At least some seeds must actually be caught. *)
  let g, _ = Lazy.force fig1 in
  let caught = ref 0 in
  List.iter
    (fun seed ->
      let deviations = Array.make 6 Adversary.Faithful in
      deviations.(2) <- Adversary.Byzantine_arbitrary seed;
      let r = Runner.run ~graph:g ~traffic:fig1_traffic ~deviations () in
      if (not r.Runner.completed) || r.Runner.detections <> [] then incr caught
      else
        (* Undetected plans amount to strategic misdeclaration — legal
           under the AC model, and Theorem 1 makes them unprofitable. *)
        let gain =
          Runner.utility_gain ~graph:g ~traffic:fig1_traffic ~node:2
            ~deviation:(Adversary.Byzantine_arbitrary seed) ()
        in
        check Alcotest.bool "undetected byz plan is unprofitable" true
          (gain <= 1e-9))
    [ 1; 2; 3; 17; 101 ];
  check Alcotest.bool "most byz plans are caught" true (!caught >= 3)

let suites =
  [
    ( "faithful.protocol",
      [
        Alcotest.test_case "empty routing" `Quick test_protocol_empty_routing;
        Alcotest.test_case "recompute line" `Quick test_protocol_recompute_routing_line;
        Alcotest.test_case "loop avoidance" `Quick test_protocol_routing_loop_avoidance;
        Alcotest.test_case "digests differ" `Quick test_protocol_digests_differ;
        Alcotest.test_case "tags hashed" `Quick test_protocol_pricing_digest_sees_tags;
        Alcotest.test_case "message sizes" `Quick test_protocol_msg_sizes;
        Alcotest.test_case "cost digests" `Quick test_protocol_costs_digest;
      ] );
    ( "faithful.node",
      [
        Alcotest.test_case "announce cost" `Quick test_node_announce_cost_faithful;
        Alcotest.test_case "misreport" `Quick test_node_announce_cost_misreport;
        Alcotest.test_case "inconsistent" `Quick test_node_announce_cost_inconsistent;
        Alcotest.test_case "flood forwards once" `Quick test_node_cost_flood_forwards_once;
        Alcotest.test_case "finalize costs" `Quick test_node_finalize_costs;
        Alcotest.test_case "routing copies" `Quick test_node_routing_update_forwards_copies;
        Alcotest.test_case "drop copies deviation" `Quick test_node_drop_copies_deviation;
        Alcotest.test_case "checker rejects bad via" `Quick test_node_checker_rejects_bad_via;
        Alcotest.test_case "payment report" `Quick test_node_payment_report;
        Alcotest.test_case "underreport" `Quick test_node_payment_report_underreports;
      ] );
    ( "faithful.bank",
      [
        Alcotest.test_case "serialize canonical" `Quick test_bank_serialize_report_canonical;
        Alcotest.test_case "checkpoint costs" `Quick test_bank_checkpoint_costs;
        Alcotest.test_case "checkpoint bytes" `Quick test_bank_checkpoint_bytes_positive;
      ] );
    ( "faithful.run",
      [
        Alcotest.test_case "faithful completes" `Quick test_run_faithful_completes;
        Alcotest.test_case "matches centralized (Fig1)" `Quick
          test_run_faithful_matches_centralized;
        Alcotest.test_case "matches centralized (random)" `Quick
          test_run_faithful_matches_centralized_random;
        Alcotest.test_case "deterministic" `Quick test_run_deterministic;
        Alcotest.test_case "traffic flows" `Quick test_run_all_traffic_delivered;
        Alcotest.test_case "money conserved" `Quick test_run_money_conserved_faithful;
      ] );
    ( "faithful.detection",
      [
        Alcotest.test_case "construction deviations caught" `Quick
          test_every_detectable_construction_deviation_caught;
        Alcotest.test_case "cost-forward corruption caught on ring" `Quick
          test_corrupt_cost_forward_caught_on_ring;
        Alcotest.test_case "execution deviations caught" `Quick
          test_every_execution_deviation_caught;
        Alcotest.test_case "misreport passes (by design)" `Quick test_misreport_not_detected;
        Alcotest.test_case "culprit attributed" `Quick test_detection_attributes_culprit;
        Alcotest.test_case "deviant checker detected" `Quick test_deviant_checker_detected;
      ] );
    ( "faithful.theorem1",
      [
        Alcotest.test_case "no profitable deviation (Fig1)" `Slow
          test_no_profitable_deviation_fig1;
        Alcotest.test_case "no profitable deviation (ring)" `Slow
          test_no_profitable_deviation_ring;
        Alcotest.test_case "unchecked: free-riding pays" `Quick
          test_unchecked_underreporting_profits;
        Alcotest.test_case "unchecked: manipulation pays" `Slow
          test_unchecked_some_construction_deviation_profits;
        Alcotest.test_case "ex post Nash report" `Slow test_analysis_ex_post_nash_holds;
        Alcotest.test_case "Proposition 2 certificate" `Slow test_analysis_evidence_certifies;
        Alcotest.test_case "unchecked not faithful" `Slow test_analysis_unchecked_not_faithful;
      ] );
    ( "faithful.extensions",
      [
        Alcotest.test_case "lying checker alone harmless" `Quick
          test_lying_checker_alone_harmless;
        Alcotest.test_case "partial collusion caught" `Quick
          test_partial_collusion_still_caught;
        Alcotest.test_case "full-neighborhood collusion escapes" `Quick
          test_full_neighborhood_collusion_escapes;
        Alcotest.test_case "detectable_in: partial coalition" `Quick
          test_detectable_in_partial_coalition;
        Alcotest.test_case "detectable_in: covering coalition" `Quick
          test_detectable_in_covering_coalition;
        Alcotest.test_case "channel loss: false positives" `Quick
          test_channel_loss_false_positives;
        Alcotest.test_case "zero loss clean" `Quick test_zero_channel_loss_is_clean;
        Alcotest.test_case "no-copies mode cheaper" `Quick test_no_copies_mode_cheaper;
        Alcotest.test_case "deferred certification catches late" `Quick
          test_deferred_certification_catches_late;
        Alcotest.test_case "deferred certification faithful clean" `Quick
          test_deferred_certification_faithful_clean;
        Alcotest.test_case "async latency agrees" `Quick test_heterogeneous_latency_agrees;
        Alcotest.test_case "async latency still detects" `Quick
          test_heterogeneous_latency_still_detects;
        Alcotest.test_case "replication correct" `Quick test_replication_correct_and_complete;
        Alcotest.test_case "replication heavier" `Quick
          test_replication_costs_more_than_faithful;
        Alcotest.test_case "hotspot traffic" `Quick test_faithful_under_hotspot_traffic;
        Alcotest.test_case "zero traffic" `Quick test_zero_traffic_execution_trivial;
        Alcotest.test_case "triangle" `Quick test_triangle_minimal_biconnected;
        Alcotest.test_case "zero-cost nodes" `Quick test_zero_cost_nodes;
        (* seeded so the 50 sampled graphs are the same on every run *)
        QCheck_alcotest.to_alcotest
          ~rand:(Random.State.make [| 0x5eed |])
          prop_faithful_random_graphs;
        QCheck_alcotest.to_alcotest prop_detection_random_graphs;
      ] );
    ( "faithful.economics",
      [
        Alcotest.test_case "fine = delta + epsilon exactly" `Quick
          test_underreport_penalty_is_delta_plus_epsilon;
        Alcotest.test_case "distributed = centralized economics" `Quick
          test_misreport_gain_matches_centralized_game;
      ] );
    ( "faithful.committee",
      [
        Alcotest.test_case "honest unanimity" `Quick test_committee_honest_unanimity;
        Alcotest.test_case "minority liar cannot flip" `Quick
          test_committee_minority_liar_cannot_flip;
        Alcotest.test_case "majority liars win" `Quick test_committee_majority_liars_win;
        Alcotest.test_case "tolerance bound" `Quick test_committee_tolerance_bound;
        Alcotest.test_case "ties fail safe" `Quick test_committee_ties_fail_safe;
        Alcotest.test_case "end-to-end checkpoint" `Quick
          test_committee_checkpoint_end_to_end;
      ] );
    ( "faithful.partitioning",
      [
        Alcotest.test_case "own pricing cannot self-enrich" `Slow
          test_partitioning_own_pricing_cannot_raise_own_income;
        Alcotest.test_case "combined attacks caught" `Quick test_combined_attacks_caught;
        Alcotest.test_case "stress n=24" `Slow test_stress_larger_network;
      ] );
    ( "faithful.audit",
      [
        Alcotest.test_case "one caught" `Quick test_audit_one_caught;
        Alcotest.test_case "one no-effect" `Quick test_audit_one_no_effect;
        Alcotest.test_case "matrix clean" `Quick test_audit_matrix_clean_on_fig1;
        Alcotest.test_case "escape visible unchecked" `Quick
          test_audit_detects_escape_under_collusion;
        Alcotest.test_case "max gain <= 0 checked" `Slow
          test_audit_max_gain_nonpositive_checked;
        Alcotest.test_case "max gain > 0 unchecked" `Slow
          test_audit_max_gain_positive_unchecked;
      ] );
    ( "faithful.election",
      [
        Alcotest.test_case "honest certifies" `Quick test_election_honest_certifies;
        Alcotest.test_case "utility matches centralized" `Quick
          test_election_winner_utility_matches_centralized;
        Alcotest.test_case "no profitable deviation" `Quick
          test_election_no_profitable_deviation;
        Alcotest.test_case "inconsistent bid caught" `Quick
          test_election_inconsistent_bid_caught;
        Alcotest.test_case "miscompute caught" `Quick test_election_miscompute_caught;
        Alcotest.test_case "unchecked self-nomination profits" `Quick
          test_election_unchecked_self_nomination_profits;
        Alcotest.test_case "refuse-to-serve fined" `Quick test_election_refuse_to_serve_fined;
        Alcotest.test_case "classification total" `Quick test_election_classification_total;
      ] );
    ( "faithful.spec",
      [
        Alcotest.test_case "covers all classes" `Quick test_spec_covers_all_classes;
        Alcotest.test_case "covers all phases" `Quick test_spec_covers_all_phases;
        Alcotest.test_case "deviations exist" `Quick test_spec_deviations_exist_in_library;
        Alcotest.test_case "library fully targeted" `Quick
          test_spec_every_library_deviation_targets_an_action;
        Alcotest.test_case "rule tags covered" `Quick
          test_spec_rules_cover_all_rule_tags;
      ] );
    ( "faithful.adversary",
      [
        Alcotest.test_case "names unique" `Quick test_adversary_names_unique;
        Alcotest.test_case "classes nonempty" `Quick test_adversary_classes_nonempty;
        Alcotest.test_case "phase partition" `Quick test_adversary_phases_partition;
      ] );
    ( "faithful.scale",
      [
        Alcotest.test_case "honest n=256 AS-like completes" `Quick
          test_scale_honest_completes;
        Alcotest.test_case "matches dense runner economics" `Quick
          test_scale_matches_dense_tables;
        Alcotest.test_case "routing distorter caught" `Quick
          test_scale_routing_distorter_caught;
        Alcotest.test_case "pricing distorter caught" `Quick
          test_scale_pricing_distorter_caught;
        Alcotest.test_case "halt on detection" `Quick test_scale_halts_on_detection;
      ] );
    ( "faithful.fault",
      [
        Alcotest.test_case "loss never accuses honest" `Quick
          test_fault_loss_never_accuses_honest;
        Alcotest.test_case "crash handoff recovers" `Quick
          test_fault_crash_handoff_recovers;
        Alcotest.test_case "partition heals" `Quick
          test_fault_partition_heals_and_completes;
        Alcotest.test_case "byz plan pure in seed" `Quick
          test_plan_of_seed_deterministic;
        Alcotest.test_case "byzantine deviant caught" `Quick
          test_byzantine_deviant_caught;
      ] );
  ]

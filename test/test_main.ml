(* Aggregates every library's alcotest suites into one executable so that
   `dune runtest` runs the whole repository's tests. *)

let () =
  Alcotest.run "damd"
    (List.concat
       [
         Test_util.suites;
         Test_obs.suites;
         Test_crypto.suites;
         Test_graph.suites;
         Test_mech.suites;
         Test_sim.suites;
         Test_fpss.suites;
         Test_core.suites;
         Test_faithful.suites;
         Test_gauntlet.suites;
         Test_speccheck.suites;
       ])

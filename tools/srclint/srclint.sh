#!/usr/bin/env bash
# srclint — the repo's determinism and hygiene source gate.
#
# Grown from test/check_float_compare.sh into the full rule table of
# DESIGN.md §17. Every rule greps the OCaml sources for a construct that
# silently breaks the repo's reproducibility or evidence-model contracts;
# a same-line waiver comment (`poly-ok:` for the compare rules, the shared
# `srclint-ok:` for everything else) documents an audited exception.
#
# Rule table:
#   poly-compare   bare polymorphic `compare` as a sort comparator or on
#                  record fields (floats order wrong on nan; the element
#                  type is hidden from the reader)           [lib/]
#   wallclock      Unix.gettimeofday / Sys.time outside lib/obs — every
#                  timestamp must flow through Damd_obs.Clock so traces
#                  and benches stay monotonic and mockable   [lib/ bin/]
#   self-init      Random.self_init — unseeded randomness breaks replay
#                  (gauntlet campaigns and QCheck shrinkers are seeds)
#   poly-hash      Hashtbl.hash in lib/ — the polymorphic hash walks
#                  structure (floats, cycles) and varies across OCaml
#                  versions; state keys must use the typed Statepack /
#                  string paths
#   marshal        Marshal in lib/ bin/ — no closure/abstract-block
#                  serialization in protocol or report paths; the JSON
#                  schemas are the only wire formats
#
# Usage: srclint.sh LIB_DIR BIN_DIR
#        srclint.sh --selftest   (seed one violation per rule in a temp
#                                 tree and assert each one fails)
set -u

fail() {
  echo "srclint: $1 (waive with a same-line '$2' comment):"
  echo "  $3"
}

# scan DESCRIPTION WAIVER PATTERN DIR...
# Greps .ml/.ml4/.ml5 sources under the given dirs; unwaived hits fail.
scan() {
  local descr="$1" waiver="$2" pat="$3"
  shift 3
  local status=0
  while IFS= read -r hit; do
    case "$hit" in
    *"$waiver"*) ;;
    *)
      fail "$descr" "$waiver" "$hit"
      status=1
      ;;
    esac
  done < <(grep -rnE --include='*.ml' --include='*.ml4' --include='*.ml5' \
    -e "$pat" "$@" 2>/dev/null)
  return "$status"
}

run_rules() {
  local lib_dir="$1" bin_dir="$2" status=0

  # poly-compare (the original float-compare gate, verbatim patterns)
  local pat1='(List|Array|Hashtbl)\.(stable_)?sort(_uniq)?[[:space:]]+compare([^_[:alnum:]]|$)'
  local pat2='(^|[^._[:alnum:]])compare[[:space:]]+[a-z_][[:alnum:]_]*\.[a-z_]'
  scan "bare polymorphic compare" "poly-ok:" "$pat1" "$lib_dir" || status=1
  scan "bare polymorphic compare" "poly-ok:" "$pat2" "$lib_dir" || status=1

  # wallclock: lib/ (minus lib/obs, which implements the clock) and bin/
  local wall='Unix\.gettimeofday|Sys\.time[^r_[:alnum:]]|Sys\.time$'
  local d
  for d in "$lib_dir"/*/; do
    case "$d" in
    */obs/) ;;
    *) scan "wall-clock read outside lib/obs" "srclint-ok:" "$wall" "$d" || status=1 ;;
    esac
  done
  scan "wall-clock read outside lib/obs" "srclint-ok:" "$wall" "$bin_dir" || status=1

  # self-init: everywhere we scan
  scan "unseeded Random.self_init" "srclint-ok:" 'Random\.self_init' \
    "$lib_dir" "$bin_dir" || status=1

  # poly-hash: lib/ only (tests may hash scalars freely)
  scan "polymorphic Hashtbl.hash" "srclint-ok:" 'Hashtbl\.hash' \
    "$lib_dir" || status=1

  # marshal: lib/ and bin/
  scan "Marshal serialization" "srclint-ok:" 'Marshal\.' \
    "$lib_dir" "$bin_dir" || status=1

  return "$status"
}

selftest() {
  local tmp
  tmp="$(mktemp -d "${TMPDIR:-/tmp}/srclint-selftest.XXXXXX")" || exit 2
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/lib/core" "$tmp/lib/obs" "$tmp/bin"

  local failures=0

  # expect_fail NAME FILE CONTENT
  expect_fail() {
    local name="$1" file="$2" content="$3"
    printf '%s\n' "$content" >"$file"
    if run_rules "$tmp/lib" "$tmp/bin" >/dev/null 2>&1; then
      echo "selftest: seeded $name violation NOT caught"
      failures=$((failures + 1))
    else
      echo "selftest: $name fires"
    fi
    rm -f "$file"
  }

  # clean tree passes
  printf 'let t = Damd_obs.Clock.now_ns ()\n' >"$tmp/lib/core/ok.ml"
  if ! run_rules "$tmp/lib" "$tmp/bin" >/dev/null 2>&1; then
    echo "selftest: clean tree unexpectedly fails"
    failures=$((failures + 1))
  else
    echo "selftest: clean tree passes"
  fi

  expect_fail poly-compare-sort "$tmp/lib/core/bad.ml" \
    'let xs = List.sort compare ys'
  expect_fail poly-compare-field "$tmp/lib/core/bad.ml" \
    'let c = compare a.cost b.cost'
  expect_fail wallclock-lib "$tmp/lib/core/bad.ml" \
    'let t0 = Unix.gettimeofday ()'
  expect_fail wallclock-systime "$tmp/lib/core/bad.ml" \
    'let t0 = Sys.time ()'
  expect_fail wallclock-bin "$tmp/bin/bad.ml" \
    'let t0 = Unix.gettimeofday ()'
  expect_fail self-init "$tmp/lib/core/bad.ml" \
    'let () = Random.self_init ()'
  expect_fail poly-hash "$tmp/lib/core/bad.ml" \
    'let h = Hashtbl.hash key'
  expect_fail marshal "$tmp/lib/core/bad.ml" \
    'let s = Marshal.to_string v []'
  expect_fail wallclock-ml5 "$tmp/lib/core/bad.ml5" \
    'let t0 = Unix.gettimeofday ()'

  # lib/obs is allowed to read the wall clock
  printf 'let t0 = Unix.gettimeofday ()\n' >"$tmp/lib/obs/clock.ml"
  if ! run_rules "$tmp/lib" "$tmp/bin" >/dev/null 2>&1; then
    echo "selftest: lib/obs wallclock wrongly flagged"
    failures=$((failures + 1))
  else
    echo "selftest: lib/obs wallclock exempt"
  fi
  rm -f "$tmp/lib/obs/clock.ml"

  # waiver comments suppress
  printf 'let xs = List.sort compare ys (* poly-ok: int pairs *)\n' \
    >"$tmp/lib/core/waived.ml"
  printf 'let h = Hashtbl.hash key (* srclint-ok: scalar ints only *)\n' \
    >>"$tmp/lib/core/waived.ml"
  if ! run_rules "$tmp/lib" "$tmp/bin" >/dev/null 2>&1; then
    echo "selftest: waiver comments not honored"
    failures=$((failures + 1))
  else
    echo "selftest: waivers honored"
  fi

  if [ "$failures" -eq 0 ]; then
    echo "srclint selftest: all rules have teeth"
    exit 0
  else
    echo "srclint selftest: $failures failure(s)"
    exit 1
  fi
}

case "${1:?usage: srclint.sh LIB_DIR BIN_DIR | --selftest}" in
--selftest)
  selftest
  ;;
*)
  lib_dir="$1"
  bin_dir="${2:?usage: srclint.sh LIB_DIR BIN_DIR}"
  if run_rules "$lib_dir" "$bin_dir"; then
    echo "srclint: clean"
    exit 0
  fi
  exit 1
  ;;
esac

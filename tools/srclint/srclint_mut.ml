(* srclint_mut — the race-discipline half of the source gate.
   (DESIGN.md §17.)

   [Pool.map] fans scenario jobs across OCaml 5 domains, and the whole
   safety argument of pool_domains.ml5 is that workers only write
   disjoint slots of one results array. That argument is void if any
   code reachable from a worker closes over mutable *toplevel* state:
   two domains would race on it with no happens-before edge, and the
   repo's bit-for-bit reproducibility contract dies silently (only on
   multicore runtimes, only under load — the worst kind of bug).

   So this linter computes the module closure of the pool-reachable
   seeds (pool_domains.ml5 itself plus explore.ml, whose scenario
   closures are what [Pool.map] runs) and flags every toplevel binding
   in that closure whose right-hand side allocates mutable state:

     let cache = Hashtbl.create 16        (* flagged *)
     let slot  = ref 0                    (* flagged *)
     let make () = Hashtbl.create 16      (* fine: per-call *)
     let seen = Hashtbl.create 16 (* domains-ok: guarded by M *)  (* waived *)

   Closure resolution is deliberately syntactic, matching the repo's
   conventions: an uppercase reference [Foo.x] resolves to the sibling
   foo.ml; [module A = B] and [module A = Damd_x.Y] aliases are
   followed; a direct [Damd_x.Y.z] resolves via lib/<x'>/y.ml where the
   dune (name damd_<x'>) stanzas give the directory map. References
   that resolve to no file (List, Array, Domain, ...) are stdlib and
   skipped. Over-approximation is fine — an extra file in the closure
   can only make the gate stricter.

   Usage: srclint_mut ROOT SEED [SEED...]   (paths relative to ROOT)
          srclint_mut --selftest *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* The dune (name damd_x) stanzas under ROOT/lib give the library-name
   -> directory map used to resolve [Damd_x.Y] references. *)
let lib_map root =
  let map = Hashtbl.create 16 in
  let libdir = Filename.concat root "lib" in
  let entries = try Sys.readdir libdir with Sys_error _ -> [||] in
  Array.iter
    (fun d ->
      let dune = Filename.concat (Filename.concat libdir d) "dune" in
      if Sys.file_exists dune then
        List.iter
          (fun line ->
            let line = String.trim line in
            let pre = "(name " in
            if String.length line > String.length pre
               && String.sub line 0 (String.length pre) = pre
            then begin
              let rest =
                String.sub line (String.length pre)
                  (String.length line - String.length pre)
              in
              let stop = ref 0 in
              while
                !stop < String.length rest && is_ident_char rest.[!stop]
              do
                incr stop
              done;
              let name = String.sub rest 0 !stop in
              if name <> "" then
                Hashtbl.replace map
                  (String.capitalize_ascii name)
                  (Filename.concat libdir d)
            end)
          (read_lines dune))
    entries;
  map

(* Module [Foo] in [dir] lives in foo.ml, or the ml5/ml4 variants the
   dune rules copy into place. pool.ml itself is generated (from
   pool_domains.ml5), so the variants are the real sources. *)
let module_file dir name =
  let base = Filename.concat dir (String.uncapitalize_ascii name) in
  let candidates =
    [ base ^ ".ml"; base ^ ".ml5"; base ^ ".ml4"; base ^ "_domains.ml5" ]
  in
  List.find_opt Sys.file_exists candidates

(* Split a qualified module path "A.B.C" (already validated uppercase
   heads) into components. *)
let path_components s = String.split_on_char '.' s

let resolve_path ~libs ~aliases ~dir comps =
  match comps with
  | [] -> None
  | head :: rest -> (
      match Hashtbl.find_opt aliases head with
      | Some target -> target
      | None -> (
          match Hashtbl.find_opt libs head with
          | Some libdir -> (
              match rest with
              | sub :: _ -> module_file libdir sub
              | [] -> None (* bare library ref carries no file *))
          | None -> module_file dir head))

(* Scan one line for qualified uppercase references: maximal runs of
   Ident(.Ident)* starting with an uppercase letter, each followed by a
   '.' (i.e. actually used as a module path, not a constructor). *)
let refs_of_line line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c >= 'A' && c <= 'Z'
       && (!i = 0 || not (is_ident_char line.[!i - 1] || line.[!i - 1] = '.'))
    then begin
      (* read Ident(.Uppercase-Ident)* *)
      let comps = ref [] in
      let j = ref !i in
      let continue = ref true in
      while !continue do
        let start = !j in
        while !j < n && is_ident_char line.[!j] do
          incr j
        done;
        comps := String.sub line start (!j - start) :: !comps;
        if !j + 1 < n && line.[!j] = '.' && line.[!j + 1] >= 'A'
           && line.[!j + 1] <= 'Z'
        then incr j
        else continue := false
      done;
      (* only count it as a module path when used qualified: Ident. *)
      if !j < n && line.[!j] = '.' then
        out := List.rev !comps :: !out;
      i := !j
    end
    else incr i
  done;
  !out

(* [module A = B.C] / [module A = Sibling] aliases, any indentation. *)
let alias_of_line ~libs ~aliases ~dir line =
  let t = String.trim line in
  let pre = "module " in
  if String.length t > String.length pre
     && String.sub t 0 (String.length pre) = pre
  then
    match String.index_opt t '=' with
    | None -> None
    | Some eq ->
        let name =
          String.trim (String.sub t (String.length pre) (eq - String.length pre))
        in
        let rhs = String.trim (String.sub t (eq + 1) (String.length t - eq - 1)) in
        if name <> ""
           && name.[0] >= 'A' && name.[0] <= 'Z'
           && rhs <> ""
           && rhs.[0] >= 'A' && rhs.[0] <= 'Z'
           && String.for_all (fun c -> is_ident_char c || c = '.') rhs
        then
          Some (name, resolve_path ~libs ~aliases ~dir (path_components rhs))
        else None
  else None

let mutable_rhs_prefixes =
  [
    "ref ";
    "ref(";
    "Hashtbl.create";
    "Array.make";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Atomic.make" (* atomics are race-free but still shared state *);
  ]

let has_prefix s p =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A column-0 [let name =] with no parameters whose RHS allocates
   mutable state. Parameterised lets allocate per call and are fine. *)
let mutable_toplevel line =
  if not (has_prefix line "let ") then None
  else if contains line "domains-ok:" then None
  else begin
    let n = String.length line in
    let i = ref 4 in
    let start = !i in
    while !i < n && is_ident_char line.[!i] do
      incr i
    done;
    let name = String.sub line start (!i - start) in
    while !i < n && line.[!i] = ' ' do
      incr i
    done;
    if name = "" || name = "_" || !i >= n || line.[!i] <> '=' then None
    else begin
      let rhs =
        String.trim (String.sub line (!i + 1) (n - !i - 1))
      in
      if List.exists (has_prefix rhs) mutable_rhs_prefixes then Some name
      else None
    end
  end

type finding = { file : string; line : int; name : string; via : string }

let check ~root ~seeds =
  let libs = lib_map root in
  let seen = Hashtbl.create 32 in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      let p = Filename.concat root s in
      if Sys.file_exists p then Queue.add (p, "seed") queue
      else begin
        Printf.eprintf "srclint_mut: seed %s not found\n" s;
        exit 2
      end)
    seeds;
  let findings = ref [] in
  let files = ref 0 in
  while not (Queue.is_empty queue) do
    let file, via = Queue.pop queue in
    if not (Hashtbl.mem seen file) then begin
      Hashtbl.add seen file ();
      incr files;
      let dir = Filename.dirname file in
      let aliases = Hashtbl.create 8 in
      List.iteri
        (fun idx line ->
          (match mutable_toplevel line with
          | Some name ->
              findings :=
                { file; line = idx + 1; name; via } :: !findings
          | None -> ());
          (match alias_of_line ~libs ~aliases ~dir line with
          | Some (name, target) -> Hashtbl.replace aliases name target
          | None -> ());
          List.iter
            (fun comps ->
              match resolve_path ~libs ~aliases ~dir comps with
              | Some target ->
                  if not (Hashtbl.mem seen target) then
                    Queue.add (target, Filename.basename file) queue
              | None -> ())
            (refs_of_line line))
        (read_lines file)
    end
  done;
  (List.rev !findings, !files)

let run root seeds =
  let findings, files = check ~root ~seeds in
  match findings with
  | [] ->
      Printf.printf "srclint_mut: clean (%d files in pool closure)\n" files;
      0
  | fs ->
      List.iter
        (fun f ->
          Printf.printf
            "srclint_mut: mutable toplevel state in domain-pool closure \
             (waive with a same-line 'domains-ok:' comment):\n\
            \  %s:%d: let %s (reached via %s)\n"
            f.file f.line f.name f.via)
        fs;
      1

(* --selftest: seed violations in a temp tree and assert each is
   caught, the waiver works, and unreachable files stay unflagged. *)
let selftest () =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "srclint-mut-%d" (Unix.getpid ()))
  in
  let mkdir_p d =
    let rec go d =
      if not (Sys.file_exists d) then begin
        go (Filename.dirname d);
        Unix.mkdir d 0o755
      end
    in
    go d
  in
  let write path content =
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  let failures = ref 0 in
  let expect what cond =
    if cond then Printf.printf "selftest: %s\n" what
    else begin
      Printf.printf "selftest: FAIL %s\n" what;
      incr failures
    end
  in
  let p rel = Filename.concat tmp rel in
  write (p "lib/a/dune") "(library\n (name damd_a))\n";
  write (p "lib/b/dune") "(library\n (name damd_b))\n";
  (* seed -> sibling Helper, alias H -> Damd_b.Util, direct Damd_b.Deep *)
  write (p "lib/a/seed.ml")
    "module H = Damd_b.Util\n\
     let go () = Helper.f () + H.x + Damd_b.Deep.y\n";
  write (p "lib/a/helper.ml") "let cache = Hashtbl.create 16\nlet f () = 1\n";
  write (p "lib/b/util.ml") "let slot = ref 0\nlet x = !slot\n";
  write (p "lib/b/deep.ml") "let y = 2\nlet buf = Buffer.create 64\n";
  (* not referenced anywhere: must stay out of the closure *)
  write (p "lib/b/orphan.ml") "let evil = ref 0\n";
  let findings, files = check ~root:tmp ~seeds:[ "lib/a/seed.ml" ] in
  let hits name = List.exists (fun f -> f.name = name) findings in
  expect "sibling module flagged" (hits "cache");
  expect "aliased cross-lib module flagged" (hits "slot");
  expect "direct Damd_x.Y module flagged" (hits "buf");
  expect "unreachable file not flagged" (not (hits "evil"));
  expect "closure size is the four reachable files" (files = 4);
  (* waiver + per-call allocation are both clean *)
  write (p "lib/a/helper.ml")
    "let cache = Hashtbl.create 16 (* domains-ok: rebuilt per run *)\n\
     let make () = Hashtbl.create 16\n\
     let f () = 1\n";
  write (p "lib/b/util.ml") "let x = 1\n";
  write (p "lib/b/deep.ml") "let y = 2\n";
  let findings, _ = check ~root:tmp ~seeds:[ "lib/a/seed.ml" ] in
  expect "waiver and per-call allocation pass" (findings = []);
  (* missing-seed guard exercised via module_file on a bogus ref *)
  write (p "lib/a/seed.ml") "let go () = Nosuchmodule.f ()\n";
  let findings, files = check ~root:tmp ~seeds:[ "lib/a/seed.ml" ] in
  expect "unresolvable refs are skipped as stdlib"
    (findings = [] && files = 1);
  let rec rm d =
    if Sys.is_directory d then begin
      Array.iter (fun e -> rm (Filename.concat d e)) (Sys.readdir d);
      Unix.rmdir d
    end
    else Sys.remove d
  in
  rm tmp;
  if !failures = 0 then begin
    Printf.printf "srclint_mut selftest: all rules have teeth\n";
    0
  end
  else begin
    Printf.printf "srclint_mut selftest: %d failure(s)\n" !failures;
    1
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "--selftest" ] -> exit (selftest ())
  | _ :: root :: (_ :: _ as seeds) -> exit (run root seeds)
  | _ ->
      prerr_endline "usage: srclint_mut ROOT SEED [SEED...] | --selftest";
      exit 2
